//! NULB and NALB (Zervas et al. [20]), as specified in §4.1 and
//! Algorithm 2 of the RISA paper.
//!
//! Both run a *compute phase* (scarce resource via contention ratio, first
//! fitting box, BFS for the remaining resources — same rack first) and a
//! *network phase* (reserve the two flows). They differ in:
//!
//! * **BFS neighbour order** — NULB visits racks/boxes in id order; NALB
//!   re-sorts them by descending available bandwidth (*modified BFS*);
//! * **link selection** — NULB takes the first fitting link, NALB the one
//!   with the most available bandwidth.
//!
//! Either phase failing drops the VM. The same routine also serves as
//! RISA's fallback, restricted to the `SUPER_RACK` rack lists.

use crate::algorithm::{DropReason, VmAssignment};
use crate::contention::most_contended_counted;
use crate::work::WorkCounters;
use risa_network::{FlowDemands, LinkPolicy, NetworkState};
use risa_topology::{
    BoxAllocation, BoxId, Cluster, RackId, ResourceKind, UnitDemand, VmPlacement, ALL_RESOURCES,
};
use serde::{Deserialize, Serialize};

/// BFS neighbour ordering (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NeighborOrder {
    /// Racks and boxes in ascending id order (NULB).
    ById,
    /// Racks and boxes in descending available-bandwidth order, ties to
    /// the lower id (NALB's modified BFS).
    ByBandwidthDesc,
}

/// Parameter bundle distinguishing NULB from NALB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NulbParams {
    /// BFS neighbour ordering.
    pub neighbor_order: NeighborOrder,
    /// Link selection policy for the network phase.
    pub link_policy: LinkPolicy,
}

impl NulbParams {
    /// NULB's parameters.
    pub const fn nulb() -> Self {
        NulbParams {
            neighbor_order: NeighborOrder::ById,
            link_policy: LinkPolicy::FirstFit,
        }
    }

    /// NALB's parameters.
    pub const fn nalb() -> Self {
        NulbParams {
            neighbor_order: NeighborOrder::ByBandwidthDesc,
            link_policy: LinkPolicy::MostAvailable,
        }
    }
}

/// The `SUPER_RACK` of Algorithm 1: per resource kind, the racks holding at
/// least one box that can satisfy the VM's demand of that kind.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuperRack {
    racks: [Vec<RackId>; 3],
    member: [Vec<bool>; 3],
    /// Per kind: `prefix[r]` = number of member racks with id < `r`
    /// (length racks + 1). Lets the index-backed scans charge the exact
    /// box count a naive restricted scan would have visited, in O(1).
    prefix: [Vec<u32>; 3],
}

impl SuperRack {
    /// Build the three rack lists for `demand` from the cached per-rack
    /// maxima (O(racks)).
    pub fn build(cluster: &Cluster, demand: &UnitDemand) -> Self {
        let n = cluster.num_racks() as usize;
        let mut racks: [Vec<RackId>; 3] = Default::default();
        let mut member: [Vec<bool>; 3] = [vec![false; n], vec![false; n], vec![false; n]];
        let mut prefix: [Vec<u32>; 3] = [vec![0; n + 1], vec![0; n + 1], vec![0; n + 1]];
        for r in 0..cluster.num_racks() {
            let rack = RackId(r);
            for kind in ALL_RESOURCES {
                let k = kind.index();
                let fits = cluster.rack_admits(rack, kind, demand.get(kind));
                if fits {
                    racks[k].push(rack);
                    member[k][r as usize] = true;
                }
                prefix[k][r as usize + 1] = prefix[k][r as usize] + u32::from(fits);
            }
        }
        SuperRack {
            racks,
            member,
            prefix,
        }
    }

    /// Racks able to satisfy `kind`.
    pub fn racks_for(&self, kind: ResourceKind) -> &[RackId] {
        &self.racks[kind.index()]
    }

    /// Whether `rack` may serve `kind`.
    pub fn allows(&self, rack: RackId, kind: ResourceKind) -> bool {
        self.member[kind.index()][rack.0 as usize]
    }

    /// Number of member racks for `kind` with id in `[lo, hi)`. O(1).
    fn members_in(&self, kind: ResourceKind, lo: u16, hi: u16) -> u64 {
        let p = &self.prefix[kind.index()];
        (p[hi as usize] - p[lo as usize]) as u64
    }

    /// True when some kind has no candidate rack at all — the VM cannot be
    /// placed and must drop in the compute phase.
    pub fn infeasible(&self) -> bool {
        self.racks.iter().any(|r| r.is_empty())
    }
}

/// Reusable buffers for the per-rack sorts NALB still performs; owned by
/// the `Scheduler` so the hot path allocates nothing per VM.
#[derive(Debug, Clone, Default)]
pub(crate) struct Scratch {
    /// NALB's within-rack box ordering buffer.
    boxes: Vec<BoxId>,
}

/// Number of member racks (per the optional restriction) in `[lo, hi)`,
/// excluding `home` — the racks a naive BFS would have fully scanned.
fn allowed_in_window(
    restrict: Option<&SuperRack>,
    kind: ResourceKind,
    lo: u16,
    hi: u16,
    home: RackId,
) -> u64 {
    if hi <= lo {
        return 0;
    }
    let total = match restrict {
        None => (hi - lo) as u64,
        Some(sr) => sr.members_in(kind, lo, hi),
    };
    let home_counts = (lo..hi).contains(&home.0) && restrict.is_none_or(|sr| sr.allows(home, kind));
    total - u64::from(home_counts)
}

/// Find the first box of `kind` able to grant `units`, in global id order
/// (both algorithms' primary scarce-resource scan). The placement index
/// answers in O(log racks); [`WorkCounters`] is charged exactly what the
/// naive whole-table scan would have cost.
fn first_box_of_kind(
    cluster: &Cluster,
    kind: ResourceKind,
    units: u32,
    restrict: Option<&SuperRack>,
    work: &mut WorkCounters,
) -> Option<BoxId> {
    let total = cluster.config().boxes_of_kind(kind) as u64;
    let mut from = 0u16;
    loop {
        let Some(rack) = cluster.next_rack_with_fit(kind, units, from) else {
            // The naive scan would have visited every box and found none.
            work.boxes_scanned += total;
            return None;
        };
        if restrict.is_none_or(|sr| sr.allows(rack, kind)) {
            let b = cluster
                .first_fit_in_rack(rack, kind, units)
                .expect("rack max admits a fit");
            work.boxes_scanned += cluster.kind_position(b) + 1;
            return Some(b);
        }
        // A fitting but restricted rack: the naive scan passes through it.
        from = rack.0 + 1;
        if from >= cluster.num_racks() {
            work.boxes_scanned += total;
            return None;
        }
    }
}

/// Scan one rack's boxes in id order for a fit, charging the counters the
/// naive per-box loop would (found at offset `o` → `o + 1` reads; miss →
/// the rack's whole box list).
fn id_order_box_in_rack(
    cluster: &Cluster,
    rack: RackId,
    kind: ResourceKind,
    units: u32,
    work: &mut WorkCounters,
) -> Option<BoxId> {
    let boxes = cluster.boxes_in_rack(rack, kind);
    match boxes
        .iter()
        .position(|&b| !cluster.is_failed(b) && cluster.available(b) >= units)
    {
        Some(pos) => {
            work.boxes_scanned += pos as u64 + 1;
            Some(boxes[pos])
        }
        None => {
            work.boxes_scanned += boxes.len() as u64;
            None
        }
    }
}

/// NALB's within-rack pick: boxes ordered by descending free uplink
/// bandwidth (ties to the lower id), first fit wins. Uses the scheduler's
/// scratch buffer; rack size is a small constant, so the sort is O(1).
fn bw_order_box_in_rack(
    cluster: &Cluster,
    net: &NetworkState,
    rack: RackId,
    kind: ResourceKind,
    units: u32,
    work: &mut WorkCounters,
    scratch: &mut Scratch,
) -> Option<BoxId> {
    let boxes = cluster.boxes_in_rack(rack, kind);
    work.sorts += 1;
    work.links_scanned += boxes.len() as u64;
    scratch.boxes.clear();
    scratch.boxes.extend_from_slice(boxes);
    scratch.boxes.sort_by(|&a, &b| {
        net.box_uplink_free_mbps(b)
            .cmp(&net.box_uplink_free_mbps(a))
            .then(a.cmp(&b))
    });
    scratch.boxes.iter().copied().find(|&b| {
        work.boxes_scanned += 1;
        !cluster.is_failed(b) && cluster.available(b) >= units
    })
}

/// BFS search for `kind`: the home rack's boxes first, then every other
/// rack, with ordering per `order`. Returns the first box that fits.
///
/// NULB's id-order walk is served by the placement index's rack-successor
/// query (skipped racks are charged to [`WorkCounters`] arithmetically);
/// NALB's bandwidth-descending walk reads the network's incremental rack
/// ordering instead of sorting every rack per probe.
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list
fn bfs_find(
    cluster: &Cluster,
    net: &NetworkState,
    kind: ResourceKind,
    units: u32,
    home: RackId,
    restrict: Option<&SuperRack>,
    order: NeighborOrder,
    work: &mut WorkCounters,
    scratch: &mut Scratch,
) -> Option<BoxId> {
    let mk = cluster.config().box_mix.of(kind) as u64;
    let racks = cluster.num_racks();
    let home_allowed = restrict.is_none_or(|sr| sr.allows(home, kind));

    // Distance 0: the home rack.
    work.racks_scanned += 1;
    if home_allowed {
        let found = match order {
            NeighborOrder::ById => id_order_box_in_rack(cluster, home, kind, units, work),
            NeighborOrder::ByBandwidthDesc => {
                bw_order_box_in_rack(cluster, net, home, kind, units, work, scratch)
            }
        };
        if found.is_some() {
            return found;
        }
    }

    // Distance 1: every other rack (two-tier topology ⇒ all equidistant).
    match order {
        NeighborOrder::ById => {
            // Walk only the racks the index proves can fit; charge skipped
            // racks what the naive in-order scan would have cost (one rack
            // check each, a full box list for allowed racks).
            let mut from = 0u16;
            loop {
                let next = cluster.next_rack_with_fit(kind, units, from);
                let stop = next.map_or(racks, |r| r.0);
                work.racks_scanned +=
                    (stop - from) as u64 - u64::from((from..stop).contains(&home.0));
                work.boxes_scanned += mk * allowed_in_window(restrict, kind, from, stop, home);
                let rack = next?;
                if rack == home {
                    from = rack.0 + 1;
                    if from >= racks {
                        return None;
                    }
                    continue;
                }
                work.racks_scanned += 1;
                if restrict.is_none_or(|sr| sr.allows(rack, kind)) {
                    let b = id_order_box_in_rack(cluster, rack, kind, units, work);
                    debug_assert!(b.is_some(), "rack max admits a fit");
                    return b;
                }
                from = rack.0 + 1;
                if from >= racks {
                    return None;
                }
            }
        }
        NeighborOrder::ByBandwidthDesc => {
            // The naive walk sorts every other rack by free uplink
            // bandwidth first; the incremental ordering replaces the sort,
            // but the cost model still charges it.
            work.sorts += 1;
            work.links_scanned += racks.saturating_sub(1) as u64;
            for rack in net.racks_by_free_bw_desc() {
                if rack == home {
                    continue;
                }
                work.racks_scanned += 1;
                if let Some(sr) = restrict {
                    if !sr.allows(rack, kind) {
                        continue;
                    }
                }
                if let Some(b) =
                    bw_order_box_in_rack(cluster, net, rack, kind, units, work, scratch)
                {
                    return Some(b);
                }
            }
            None
        }
    }
}

/// Algorithm 2 in full: compute phase + network phase, dropping on failure.
///
/// `restrict` limits each kind's candidate boxes to the SUPER_RACK's racks
/// (RISA's fallback path); `None` is the plain NULB/NALB behaviour.
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list
pub(crate) fn nulb_schedule(
    cluster: &mut Cluster,
    net: &mut NetworkState,
    demand: &UnitDemand,
    flows: &FlowDemands,
    restrict: Option<&SuperRack>,
    params: NulbParams,
    work: &mut WorkCounters,
    scratch: &mut Scratch,
) -> Result<VmAssignment, DropReason> {
    // 1. Most scarce resource by contention ratio.
    let scarce = most_contended_counted(cluster, demand, restrict, work);

    // 2. First box satisfying the scarce demand.
    let Some(primary) = first_box_of_kind(cluster, scarce, demand.get(scarce), restrict, work)
    else {
        return Err(DropReason::Compute);
    };
    let home = cluster.rack_of(primary);

    // 3. BFS for the remaining kinds, same rack first.
    let mut grants = [BoxAllocation {
        box_id: primary,
        units: demand.get(scarce),
    }; 3];
    grants[scarce.index()] = BoxAllocation {
        box_id: primary,
        units: demand.get(scarce),
    };
    for kind in ALL_RESOURCES {
        if kind == scarce {
            continue;
        }
        let Some(b) = bfs_find(
            cluster,
            net,
            kind,
            demand.get(kind),
            home,
            restrict,
            params.neighbor_order,
            work,
            scratch,
        ) else {
            return Err(DropReason::Compute);
        };
        grants[kind.index()] = BoxAllocation {
            box_id: b,
            units: demand.get(kind),
        };
    }
    let placement = VmPlacement { grants };

    // 4. Commit compute, then the network phase.
    if cluster.take_placement(&placement).is_err() {
        return Err(DropReason::Compute);
    }
    let cpu_box = placement.grant(ResourceKind::Cpu).box_id;
    let ram_box = placement.grant(ResourceKind::Ram).box_id;
    let sto_box = placement.grant(ResourceKind::Storage).box_id;
    match net.alloc_vm(
        cluster,
        cpu_box,
        ram_box,
        sto_box,
        flows,
        params.link_policy,
    ) {
        Ok(network) => {
            let intra_rack = placement.is_intra_rack(cluster);
            Ok(VmAssignment {
                placement,
                network,
                intra_rack,
                used_fallback: false,
            })
        }
        Err(_) => {
            cluster
                .give_placement(&placement)
                .expect("rollback of held placement");
            Err(DropReason::Network)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy;
    use risa_network::NetworkConfig;
    use risa_topology::TopologyConfig;

    fn net_for(c: &Cluster) -> NetworkState {
        NetworkState::new(NetworkConfig::paper(), c)
    }

    fn flows(_c: &Cluster, d: &UnitDemand) -> FlowDemands {
        FlowDemands::for_vm(&NetworkConfig::paper(), d)
    }

    /// §4.3.1 toy example 1: NULB picks CPU/RAM/storage table ids (2, 1, 2)
    /// — an inter-rack assignment.
    #[test]
    fn toy_example1_nulb_goes_inter_rack() {
        let mut c = toy::table3_cluster();
        let mut n = net_for(&c);
        let d = toy::typical_vm_demand(&c);
        let f = flows(&c, &d);
        let a = nulb_schedule(
            &mut c,
            &mut n,
            &d,
            &f,
            None,
            NulbParams::nulb(),
            &mut WorkCounters::new(),
            &mut Scratch::default(),
        )
        .unwrap();
        let ids = toy::table3_ids();
        assert_eq!(a.placement.grant(ResourceKind::Cpu).box_id, ids.cpu[2]);
        assert_eq!(a.placement.grant(ResourceKind::Ram).box_id, ids.ram[1]);
        assert_eq!(a.placement.grant(ResourceKind::Storage).box_id, ids.sto[2]);
        assert!(!a.intra_rack, "paper: NULB's choice is inter-rack");
    }

    /// NALB makes the same compute choice on the toy state (bandwidth is
    /// uniform), still inter-rack.
    #[test]
    fn toy_example1_nalb_also_inter_rack() {
        let mut c = toy::table3_cluster();
        let mut n = net_for(&c);
        let d = toy::typical_vm_demand(&c);
        let f = flows(&c, &d);
        let a = nulb_schedule(
            &mut c,
            &mut n,
            &d,
            &f,
            None,
            NulbParams::nalb(),
            &mut WorkCounters::new(),
            &mut Scratch::default(),
        )
        .unwrap();
        assert!(!a.intra_rack);
    }

    #[test]
    fn drops_on_compute_when_nothing_fits() {
        let mut c = toy::table3_cluster();
        let mut n = net_for(&c);
        // More RAM than any single box has free (max 8 units).
        let d = UnitDemand::new(1, 9, 1);
        let f = flows(&c, &d);
        let err = nulb_schedule(
            &mut c,
            &mut n,
            &d,
            &f,
            None,
            NulbParams::nulb(),
            &mut WorkCounters::new(),
            &mut Scratch::default(),
        )
        .unwrap_err();
        assert_eq!(err, DropReason::Compute);
        c.check_invariants().unwrap();
        assert_eq!(n.intra_used_mbps(), 0, "failed compute leaks no bandwidth");
    }

    #[test]
    fn drops_on_network_and_rolls_back_compute() {
        let mut c = Cluster::new(TopologyConfig::paper());
        let mut n = net_for(&c);
        let d = UnitDemand::new(2, 4, 2);
        let f = flows(&c, &d);
        // Saturate every CPU box uplink so the CPU-RAM flow cannot be
        // wired; spread the far ends over both RAM boxes so each RAM trunk
        // fills exactly (2 CPU boxes × 1 flow each per RAM box).
        for b in c
            .boxes_of_kind(ResourceKind::Cpu)
            .map(|b| b.id)
            .collect::<Vec<_>>()
        {
            let rams = c.boxes_in_rack(c.rack_of(b), ResourceKind::Ram).to_vec();
            for ram in rams {
                for _ in 0..4 {
                    n.alloc_flow(&c, b, ram, 200_000, LinkPolicy::FirstFit)
                        .unwrap();
                }
            }
        }
        let before = c.total_available(ResourceKind::Cpu);
        let err = nulb_schedule(
            &mut c,
            &mut n,
            &d,
            &f,
            None,
            NulbParams::nulb(),
            &mut WorkCounters::new(),
            &mut Scratch::default(),
        )
        .unwrap_err();
        assert_eq!(err, DropReason::Network);
        assert_eq!(
            c.total_available(ResourceKind::Cpu),
            before,
            "compute grants must be rolled back on a network drop"
        );
    }

    #[test]
    fn same_rack_preferred_when_possible() {
        let mut c = Cluster::new(TopologyConfig::paper());
        let mut n = net_for(&c);
        let d = UnitDemand::new(2, 4, 2);
        let f = flows(&c, &d);
        let a = nulb_schedule(
            &mut c,
            &mut n,
            &d,
            &f,
            None,
            NulbParams::nulb(),
            &mut WorkCounters::new(),
            &mut Scratch::default(),
        )
        .unwrap();
        assert!(a.intra_rack, "pristine cluster: BFS finds home-rack boxes");
    }

    #[test]
    fn super_rack_membership() {
        let c = toy::table3_cluster();
        let d = toy::typical_vm_demand(&c);
        let sr = SuperRack::build(&c, &d);
        // Rack 0 has no CPU and no storage for the typical VM; rack 1 all.
        assert_eq!(sr.racks_for(ResourceKind::Cpu), &[RackId(1)]);
        assert_eq!(sr.racks_for(ResourceKind::Ram), &[RackId(0), RackId(1)]);
        assert_eq!(sr.racks_for(ResourceKind::Storage), &[RackId(1)]);
        assert!(sr.allows(RackId(0), ResourceKind::Ram));
        assert!(!sr.allows(RackId(0), ResourceKind::Cpu));
        assert!(!sr.infeasible());

        // An impossible demand empties a list.
        let sr = SuperRack::build(&c, &UnitDemand::new(999, 1, 1));
        assert!(sr.infeasible());
    }

    #[test]
    fn restriction_excludes_rack0_ram() {
        // Force the scarce search away from rack 0 via SUPER_RACK even
        // though rack 0's RAM box 3 has 4 units free.
        let mut c = toy::table3_cluster();
        let mut n = net_for(&c);
        let d = toy::typical_vm_demand(&c);
        let f = flows(&c, &d);
        // Build a SUPER_RACK for a demand whose RAM needs 8 units: only
        // rack 1 qualifies for RAM.
        let tight = UnitDemand::new(2, 8, 2);
        let sr = SuperRack::build(&c, &tight);
        assert_eq!(sr.racks_for(ResourceKind::Ram), &[RackId(1)]);
        let a = nulb_schedule(
            &mut c,
            &mut n,
            &d,
            &f,
            Some(&sr),
            NulbParams::nulb(),
            &mut WorkCounters::new(),
            &mut Scratch::default(),
        )
        .unwrap();
        // With rack 0 excluded for RAM, everything lands in rack 1.
        assert!(a.intra_rack);
    }

    /// NALB's modified BFS prefers racks with more free uplink bandwidth;
    /// NULB ignores bandwidth and takes the lowest rack id.
    #[test]
    fn nalb_prefers_higher_bandwidth_rack() {
        // Demand (1, 8, 1): RAM is scarce, so the primary box is the first
        // RAM box (rack 0). Emptying rack 0's CPU forces the CPU BFS
        // off-rack, where the orders diverge.
        let d = UnitDemand::new(1, 8, 1);
        let f = flows(&Cluster::new(TopologyConfig::paper()), &d);

        let mut c = Cluster::new(TopologyConfig::paper());
        c.force_available(BoxId(0), 0);
        c.force_available(BoxId(1), 0);
        let mut n = net_for(&c);
        // Drain uplink bandwidth: rack 1 heavily (3 × 150 Gb/s leaving it),
        // racks 2-4 lightly (150 Gb/s arriving each). Racks 5+ stay full.
        n.alloc_flow(&c, BoxId(6), BoxId(12), 150_000, LinkPolicy::FirstFit)
            .unwrap();
        n.alloc_flow(&c, BoxId(7), BoxId(18), 150_000, LinkPolicy::FirstFit)
            .unwrap();
        n.alloc_flow(&c, BoxId(8), BoxId(24), 150_000, LinkPolicy::FirstFit)
            .unwrap();
        let a = nulb_schedule(
            &mut c,
            &mut n,
            &d,
            &f,
            None,
            NulbParams::nalb(),
            &mut WorkCounters::new(),
            &mut Scratch::default(),
        )
        .unwrap();
        let cpu_rack = c.rack_of(a.placement.grant(ResourceKind::Cpu).box_id);
        assert_eq!(
            cpu_rack,
            RackId(5),
            "NALB picks the first fully-free uplink (racks 5+ tie, lowest id)"
        );

        // NULB, by contrast, takes rack 1 (lowest id) regardless.
        let mut c2 = Cluster::new(TopologyConfig::paper());
        c2.force_available(BoxId(0), 0);
        c2.force_available(BoxId(1), 0);
        let mut n2 = net_for(&c2);
        let a2 = nulb_schedule(
            &mut c2,
            &mut n2,
            &d,
            &f,
            None,
            NulbParams::nulb(),
            &mut WorkCounters::new(),
            &mut Scratch::default(),
        )
        .unwrap();
        assert_eq!(
            c2.rack_of(a2.placement.grant(ResourceKind::Cpu).box_id),
            RackId(1)
        );
    }

    #[test]
    fn zero_demand_vm_is_trivially_assigned() {
        let mut c = Cluster::new(TopologyConfig::paper());
        let mut n = net_for(&c);
        let d = UnitDemand::ZERO;
        let f = flows(&c, &d);
        let a = nulb_schedule(
            &mut c,
            &mut n,
            &d,
            &f,
            None,
            NulbParams::nulb(),
            &mut WorkCounters::new(),
            &mut Scratch::default(),
        )
        .unwrap();
        assert!(a.intra_rack);
        assert_eq!(a.network.total_mbps(), 0);
    }
}
