//! Contention ratio (CR): the scarce-resource heuristic shared by NULB,
//! NALB and RISA's fallback path (§4.1).
//!
//! `CR(r) = requested(r) / available(r)` over the candidate box set; the
//! resource with the highest CR is searched for first. Ties (and the
//! all-zero-demand case) resolve in canonical CPU → RAM → storage order,
//! which the paper leaves unspecified.

use risa_topology::{Cluster, ResourceKind, UnitDemand, ALL_RESOURCES};

/// CR per resource kind. `available == 0` with non-zero demand yields
/// `f64::INFINITY` (that resource is maximally contended — and the VM will
/// drop in the compute phase anyway).
///
/// Algorithm 2's pseudocode computes availability by **scanning the box
/// table** ("for all res_type: append CR(res_type)"); the per-VM scan is
/// part of the NULB/NALB cost the paper's Figures 11/12 measure. Since the
/// cluster now carries incremental totals, the *values* are read in O(1) —
/// while [`crate::WorkCounters`] still charges the scan the baseline
/// algorithms are defined with, keeping the machine-independent cost model
/// identical to the seed's.
pub fn contention_ratios(
    cluster: &Cluster,
    demand: &UnitDemand,
    restrict: Option<&crate::nulb::SuperRack>,
) -> [f64; 3] {
    let mut scratch = crate::work::WorkCounters::new();
    contention_ratios_counted(cluster, demand, restrict, &mut scratch)
}

/// [`contention_ratios`] with work accounting (the per-VM scan cost the
/// Figure 11/12 experiments attribute to NULB/NALB).
pub(crate) fn contention_ratios_counted(
    cluster: &Cluster,
    demand: &UnitDemand,
    restrict: Option<&crate::nulb::SuperRack>,
    work: &mut crate::work::WorkCounters,
) -> [f64; 3] {
    let mut crs = [0.0f64; 3];
    for kind in ALL_RESOURCES {
        let req = demand.get(kind) as f64;
        let avail = match restrict {
            None => {
                // Identical to the naive Σ over boxes_of_kind; the counter
                // charges the full scan that sum used to perform.
                work.boxes_scanned += cluster.config().boxes_of_kind(kind) as u64;
                cluster.total_available(kind) as f64
            }
            Some(sr) => {
                work.racks_scanned += sr.racks_for(kind).len() as u64;
                sr.racks_for(kind)
                    .iter()
                    .map(|&r| cluster.rack_total_available(r, kind))
                    .sum::<u64>() as f64
            }
        };
        crs[kind.index()] = if req == 0.0 {
            0.0
        } else if avail == 0.0 {
            f64::INFINITY
        } else {
            req / avail
        };
    }
    crs
}

/// The most-contended resource kind (highest CR, ties to canonical order).
pub fn most_contended(
    cluster: &Cluster,
    demand: &UnitDemand,
    restrict: Option<&crate::nulb::SuperRack>,
) -> ResourceKind {
    let mut scratch = crate::work::WorkCounters::new();
    most_contended_counted(cluster, demand, restrict, &mut scratch)
}

/// [`most_contended`] with work accounting.
pub(crate) fn most_contended_counted(
    cluster: &Cluster,
    demand: &UnitDemand,
    restrict: Option<&crate::nulb::SuperRack>,
    work: &mut crate::work::WorkCounters,
) -> ResourceKind {
    let crs = contention_ratios_counted(cluster, demand, restrict, work);
    let mut best = ResourceKind::Cpu;
    for kind in ALL_RESOURCES {
        if crs[kind.index()] > crs[best.index()] {
            best = kind;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use risa_topology::TopologyConfig;

    /// The paper's toy example 1 arithmetic (§4.3.1): CR(CPU)=0.08,
    /// CR(RAM)=0.25, CR(STO)=0.17 for an 8-core/16 GB/128 GB VM against
    /// the Table 3 availability.
    #[test]
    fn toy_example1_ratios() {
        let cluster = crate::toy::table3_cluster();
        let demand = crate::toy::typical_vm_demand(&cluster);
        let crs = contention_ratios(&cluster, &demand, None);
        // Units: CPU req 2u of 24u free; RAM 4u of 16u; STO 2u of 12u.
        assert!((crs[0] - 2.0 / 24.0).abs() < 1e-12, "CPU CR {}", crs[0]);
        assert!((crs[1] - 4.0 / 16.0).abs() < 1e-12, "RAM CR {}", crs[1]);
        assert!((crs[2] - 2.0 / 12.0).abs() < 1e-12, "STO CR {}", crs[2]);
        // Paper prints 0.08 / 0.25 / 0.17 (they divide natural amounts:
        // 8/96 cores, 16/64 GB, 128/768 GB — identical ratios).
        assert!((crs[0] - 0.0833).abs() < 1e-3);
        assert!((crs[1] - 0.25).abs() < 1e-12);
        assert!((crs[2] - 0.1667).abs() < 1e-3);
        assert_eq!(most_contended(&cluster, &demand, None), ResourceKind::Ram);
    }

    #[test]
    fn zero_demand_has_zero_cr() {
        let cluster = Cluster::new(TopologyConfig::paper());
        let crs = contention_ratios(&cluster, &UnitDemand::ZERO, None);
        assert_eq!(crs, [0.0; 3]);
        // Ties resolve to CPU.
        assert_eq!(
            most_contended(&cluster, &UnitDemand::ZERO, None),
            ResourceKind::Cpu
        );
    }

    #[test]
    fn exhausted_resource_is_infinitely_contended() {
        let mut cluster = Cluster::new(TopologyConfig::paper());
        for b in 0..cluster.num_boxes() {
            let id = risa_topology::BoxId(b as u32);
            if cluster.kind_of(id) == ResourceKind::Storage {
                cluster.force_available(id, 0);
            }
        }
        let d = UnitDemand::new(1, 1, 1);
        let crs = contention_ratios(&cluster, &d, None);
        assert!(crs[2].is_infinite());
        assert_eq!(most_contended(&cluster, &d, None), ResourceKind::Storage);
    }

    #[test]
    fn restriction_changes_denominator() {
        let cluster = Cluster::new(TopologyConfig::paper());
        let d = UnitDemand::new(4, 4, 4);
        let sr = crate::nulb::SuperRack::build(&cluster, &d);
        let unrestricted = contention_ratios(&cluster, &d, None);
        let restricted = contention_ratios(&cluster, &d, Some(&sr));
        // A pristine cluster admits every rack, so they coincide.
        assert_eq!(unrestricted, restricted);
    }
}
