//! # risa-sched — the RISA paper's scheduling algorithms
//!
//! This crate implements all four schedulers evaluated in the paper:
//!
//! * **NULB** (network-unaware locality-based, Zervas et al. \[20\],
//!   Algorithm 2): contention-ratio scarce-resource selection, first-box
//!   scan, breadth-first search for the remaining resources (same rack
//!   first), first-fit link selection.
//! * **NALB** (network-aware locality-based \[20\]): NULB with the BFS
//!   neighbour order re-sorted by descending available bandwidth and
//!   most-available link selection.
//! * **RISA** (Algorithm 1, this paper): an `INTRA_RACK_POOL` of racks able
//!   to host the whole VM, consumed **round-robin**; within the rack a
//!   next-fit box scan; on an empty/infeasible pool, fall back to NULB
//!   restricted to the `SUPER_RACK`.
//! * **RISA-BF** (Algorithm 3): RISA with best-fit (ascending-availability)
//!   box selection inside the chosen rack.
//!
//! The schedulers mutate a [`risa_topology::Cluster`] (compute units) and a
//! [`risa_network::NetworkState`] (link bandwidth) and are fully
//! deterministic. Since PR 1 they run scan-free against the incremental
//! [`risa_topology::PlacementIndex`]; the [`oracle`] module preserves the
//! seed's scan-based implementations as an executable spec, and
//! `tests/differential.rs` proves placement/drop/counter equality against
//! it. [`WorkCounters`] still charges the naive scan costs that the
//! paper's Figures 11/12 model. Key entry points: [`Scheduler::schedule`],
//! [`Scheduler::release`], and [`cycle::ScheduleCycle`] (the throughput
//! treadmill shared by `risa-cli bench` and the criterion `scale` bench).
//!
//! ```
//! use risa_sched::{Algorithm, Scheduler, ScheduleOutcome};
//! use risa_topology::{Cluster, TopologyConfig, UnitDemand};
//! use risa_network::{NetworkConfig, NetworkState};
//!
//! let mut cluster = Cluster::new(TopologyConfig::paper());
//! let mut net = NetworkState::new(NetworkConfig::paper(), &cluster);
//! let mut sched = Scheduler::new(Algorithm::Risa, &cluster);
//!
//! let demand = UnitDemand::new(2, 4, 2); // the paper's "typical VM"
//! match sched.schedule(&mut cluster, &mut net, &demand) {
//!     ScheduleOutcome::Assigned(a) => {
//!         assert!(a.intra_rack, "an empty DDC always admits intra-rack");
//!         Scheduler::release(&mut cluster, &mut net, &a);
//!     }
//!     ScheduleOutcome::Dropped(reason) => panic!("dropped: {reason:?}"),
//! }
//! ```

#![warn(missing_docs)]

mod algorithm;
pub mod audit;
mod contention;
pub mod cycle;
mod nulb;
pub mod oracle;
mod risa;
mod scheduler;
pub mod toy;
mod work;

pub use algorithm::{Algorithm, DropReason, ScheduleOutcome, VmAssignment};
pub use contention::{contention_ratios, most_contended};
pub use nulb::{NeighborOrder, NulbParams, SuperRack};
pub use scheduler::Scheduler;
pub use work::WorkCounters;
