//! The unified scheduler front-end dispatching to NULB/NALB/RISA/RISA-BF.

use crate::algorithm::{Algorithm, ScheduleOutcome, VmAssignment};
use crate::nulb::{nulb_schedule, NulbParams, Scratch};
use crate::risa::RisaState;
use crate::work::WorkCounters;
use risa_network::{FlowDemands, NetworkState};
use risa_topology::{Cluster, UnitDemand};
use serde::{Deserialize, Serialize};

/// A stateful scheduler instance. NULB/NALB are stateless per VM; RISA and
/// RISA-BF carry the round-robin and next-fit cursors across VMs, so one
/// `Scheduler` must live for the whole workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scheduler {
    algo: Algorithm,
    risa: RisaState,
    work: WorkCounters,
    /// Reusable sort buffers (NALB's within-rack ordering); scratch state,
    /// excluded from serialization.
    #[serde(skip)]
    scratch: Scratch,
}

impl Scheduler {
    /// Create a scheduler for `algo` sized to `cluster`.
    pub fn new(algo: Algorithm, cluster: &Cluster) -> Self {
        Scheduler {
            algo,
            risa: RisaState::new(cluster, algo == Algorithm::RisaBf),
            work: WorkCounters::new(),
            scratch: Scratch::default(),
        }
    }

    /// The algorithm this scheduler runs.
    pub fn algorithm(&self) -> Algorithm {
        self.algo
    }

    /// Deterministic operation counters accumulated since construction (or
    /// the last [`Scheduler::reset_work`]) — the machine-independent
    /// backing for the paper's Figure 11/12 execution-time comparison.
    pub fn work(&self) -> &WorkCounters {
        &self.work
    }

    /// Zero the work counters.
    pub fn reset_work(&mut self) {
        self.work = WorkCounters::new();
    }

    /// Schedule one VM with `demand` (in units). Bandwidth demands derive
    /// from the network config per Table 2. Mutates the cluster and network
    /// only on success.
    pub fn schedule(
        &mut self,
        cluster: &mut Cluster,
        net: &mut NetworkState,
        demand: &UnitDemand,
    ) -> ScheduleOutcome {
        let flows = FlowDemands::for_vm(net.config(), demand);
        self.schedule_with_flows(cluster, net, demand, &flows)
    }

    /// As [`Scheduler::schedule`] but with externally computed flow
    /// demands (ablation hook for non-Table-2 bandwidth models).
    pub fn schedule_with_flows(
        &mut self,
        cluster: &mut Cluster,
        net: &mut NetworkState,
        demand: &UnitDemand,
        flows: &FlowDemands,
    ) -> ScheduleOutcome {
        self.work.calls += 1;
        let result = match self.algo {
            Algorithm::Nulb => nulb_schedule(
                cluster,
                net,
                demand,
                flows,
                None,
                NulbParams::nulb(),
                &mut self.work,
                &mut self.scratch,
            ),
            Algorithm::Nalb => nulb_schedule(
                cluster,
                net,
                demand,
                flows,
                None,
                NulbParams::nalb(),
                &mut self.work,
                &mut self.scratch,
            ),
            Algorithm::Risa | Algorithm::RisaBf => self.risa.schedule(
                cluster,
                net,
                demand,
                flows,
                &mut self.work,
                &mut self.scratch,
            ),
        };
        match result {
            Ok(a) => ScheduleOutcome::Assigned(a),
            Err(reason) => ScheduleOutcome::Dropped(reason),
        }
    }

    /// Release an admitted VM's compute units and bandwidth (departure).
    pub fn release(cluster: &mut Cluster, net: &mut NetworkState, assignment: &VmAssignment) {
        net.release_vm(&assignment.network)
            .expect("releasing held flows cannot over-release");
        cluster
            .give_placement(&assignment.placement)
            .expect("releasing a held placement cannot fail");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use risa_network::NetworkConfig;
    use risa_topology::{ResourceKind, TopologyConfig};

    fn setup(algo: Algorithm) -> (Cluster, NetworkState, Scheduler) {
        let c = Cluster::new(TopologyConfig::paper());
        let n = NetworkState::new(NetworkConfig::paper(), &c);
        let s = Scheduler::new(algo, &c);
        (c, n, s)
    }

    #[test]
    fn all_algorithms_admit_on_pristine_cluster() {
        for algo in Algorithm::ALL {
            let (mut c, mut n, mut s) = setup(algo);
            let d = UnitDemand::new(2, 4, 2);
            let out = s.schedule(&mut c, &mut n, &d);
            let a = out.assigned().unwrap_or_else(|| panic!("{algo} dropped"));
            assert!(a.intra_rack, "{algo} should be intra-rack when empty");
            Scheduler::release(&mut c, &mut n, a);
            assert_eq!(c.total_available(ResourceKind::Cpu), 4608);
            assert_eq!(n.intra_used_mbps(), 0);
            c.check_invariants().unwrap();
        }
    }

    #[test]
    fn schedule_release_cycle_is_leak_free() {
        let (mut c, mut n, mut s) = setup(Algorithm::RisaBf);
        let d = UnitDemand::new(8, 8, 2);
        let mut held = vec![];
        for _ in 0..100 {
            match s.schedule(&mut c, &mut n, &d) {
                ScheduleOutcome::Assigned(a) => held.push(a),
                ScheduleOutcome::Dropped(r) => panic!("unexpected drop: {r:?}"),
            }
        }
        for a in &held {
            Scheduler::release(&mut c, &mut n, a);
        }
        assert_eq!(c.total_available(ResourceKind::Cpu), 4608);
        assert_eq!(c.total_available(ResourceKind::Ram), 4608);
        assert_eq!(c.total_available(ResourceKind::Storage), 4608);
        assert_eq!(n.intra_used_mbps(), 0);
        assert_eq!(n.inter_used_mbps(), 0);
    }

    #[test]
    fn algorithm_accessor() {
        let (_c, _n, s) = setup(Algorithm::Nalb);
        assert_eq!(s.algorithm(), Algorithm::Nalb);
    }

    /// Saturating the whole cluster eventually drops for every algorithm,
    /// and the drop leaves state consistent.
    #[test]
    fn saturation_drops_cleanly() {
        let mut admitted_by_algo = std::collections::HashMap::new();
        for algo in Algorithm::ALL {
            // Narrow 2-link trunks so the network saturates before compute.
            let c = Cluster::new(TopologyConfig::paper());
            let mut netcfg = NetworkConfig::paper();
            netcfg.box_uplink_width = 2;
            netcfg.rack_uplink_width = 4;
            let mut n = NetworkState::new(netcfg, &c);
            let mut s = Scheduler::new(algo, &c);
            let mut c = c;
            // 32 units each: CPU-RAM flow = 160 Gb/s, within one link but
            // heavy enough that trunks saturate before compute does.
            let d = UnitDemand::new(32, 32, 32);
            let mut admitted = 0;
            while let ScheduleOutcome::Assigned(_) = s.schedule(&mut c, &mut n, &d) {
                admitted += 1;
                assert!(admitted < 10_000, "{algo} never saturated");
            }
            // Compute bound: 4608 / 32 = 144 VMs.
            assert!(admitted <= 144, "{algo} overcommitted: {admitted}");
            assert!(admitted >= 1, "{algo} admitted nothing");
            c.check_invariants().unwrap();
            n.check_invariants().unwrap();
            admitted_by_algo.insert(algo, admitted);
        }
        // The paper's motivation in miniature: NULB's network-oblivious
        // first-fit keeps hammering the saturated first box and drops
        // early; RISA's round-robin spreads flows over every rack trunk.
        assert!(
            admitted_by_algo[&Algorithm::Risa] > admitted_by_algo[&Algorithm::Nulb],
            "RISA ({}) should outlast NULB ({}) under trunk pressure",
            admitted_by_algo[&Algorithm::Risa],
            admitted_by_algo[&Algorithm::Nulb]
        );
    }
}
