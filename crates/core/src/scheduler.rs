//! The unified scheduler front-end dispatching to NULB/NALB/RISA/RISA-BF.

use crate::algorithm::{Algorithm, ScheduleOutcome, VmAssignment};
use crate::nulb::{nulb_schedule, NulbParams, Scratch};
use crate::risa::RisaState;
use crate::work::WorkCounters;
use risa_network::{FlowDemands, NetworkState};
use risa_topology::{Cluster, UnitDemand};
use serde::{Deserialize, Serialize};

/// A stateful scheduler instance. NULB/NALB are stateless per VM; RISA and
/// RISA-BF carry the round-robin and next-fit cursors across VMs, so one
/// `Scheduler` must live for the whole workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scheduler {
    algo: Algorithm,
    risa: RisaState,
    work: WorkCounters,
    /// Reusable sort buffers (NALB's within-rack ordering); scratch state,
    /// excluded from serialization.
    #[serde(skip)]
    scratch: Scratch,
}

impl Scheduler {
    /// Create a scheduler for `algo` sized to `cluster`.
    pub fn new(algo: Algorithm, cluster: &Cluster) -> Self {
        Scheduler {
            algo,
            risa: RisaState::new(cluster, algo == Algorithm::RisaBf),
            work: WorkCounters::new(),
            scratch: Scratch::default(),
        }
    }

    /// The algorithm this scheduler runs.
    pub fn algorithm(&self) -> Algorithm {
        self.algo
    }

    /// Deterministic operation counters accumulated since construction (or
    /// the last [`Scheduler::reset_work`]) — the machine-independent
    /// backing for the paper's Figure 11/12 execution-time comparison.
    pub fn work(&self) -> &WorkCounters {
        &self.work
    }

    /// Zero the work counters.
    pub fn reset_work(&mut self) {
        self.work = WorkCounters::new();
    }

    /// Clone for speculative execution: identical algorithm and cursor
    /// state, but zeroed work counters, so after a speculated call the
    /// clone's [`Scheduler::work`] *is* the work delta of that call — the
    /// committing executor adds it back with [`Scheduler::add_work`].
    pub fn speculative_clone(&self) -> Self {
        let mut clone = self.clone();
        clone.reset_work();
        clone
    }

    /// Adopt `donor`'s algorithm cursor state (RISA round-robin and
    /// next-fit cursors) without touching our work counters. Used by the
    /// speculative executor's fast-path commit: a validated speculated
    /// admit already knows the exact post-call cursors, so the real
    /// scheduler can skip the search and jump straight to them.
    pub fn adopt_cursors(&mut self, donor: &Scheduler) {
        debug_assert_eq!(self.algo, donor.algo, "cursor adoption across algorithms");
        self.risa = donor.risa.clone();
    }

    /// Add a work-counter delta measured on a [`Scheduler::speculative_clone`].
    pub fn add_work(&mut self, delta: WorkCounters) {
        self.work += delta;
    }

    /// The RISA round-robin cursor: the first pool rack the next
    /// [`Scheduler::schedule`] call will probe. Meaningful only for
    /// RISA/RISA-BF (NULB/NALB are stateless); exposed so the speculative
    /// executor can form the wrapping read interval `[cursor, chosen]`
    /// for conflict detection.
    pub fn rr_cursor(&self) -> u16 {
        self.risa.rr_cursor()
    }

    /// Schedule one VM with `demand` (in units). Bandwidth demands derive
    /// from the network config per Table 2. Mutates the cluster and network
    /// only on success.
    pub fn schedule(
        &mut self,
        cluster: &mut Cluster,
        net: &mut NetworkState,
        demand: &UnitDemand,
    ) -> ScheduleOutcome {
        let flows = FlowDemands::for_vm(net.config(), demand);
        self.schedule_with_flows(cluster, net, demand, &flows)
    }

    /// As [`Scheduler::schedule`] but with externally computed flow
    /// demands (ablation hook for non-Table-2 bandwidth models).
    pub fn schedule_with_flows(
        &mut self,
        cluster: &mut Cluster,
        net: &mut NetworkState,
        demand: &UnitDemand,
        flows: &FlowDemands,
    ) -> ScheduleOutcome {
        self.work.calls += 1;
        let result = match self.algo {
            Algorithm::Nulb => nulb_schedule(
                cluster,
                net,
                demand,
                flows,
                None,
                NulbParams::nulb(),
                &mut self.work,
                &mut self.scratch,
            ),
            Algorithm::Nalb => nulb_schedule(
                cluster,
                net,
                demand,
                flows,
                None,
                NulbParams::nalb(),
                &mut self.work,
                &mut self.scratch,
            ),
            Algorithm::Risa | Algorithm::RisaBf => self.risa.schedule(
                cluster,
                net,
                demand,
                flows,
                &mut self.work,
                &mut self.scratch,
            ),
        };
        match result {
            Ok(a) => ScheduleOutcome::Assigned(a),
            Err(reason) => ScheduleOutcome::Dropped(reason),
        }
    }

    /// Release an admitted VM's compute units and bandwidth (departure).
    pub fn release(cluster: &mut Cluster, net: &mut NetworkState, assignment: &VmAssignment) {
        net.release_vm(&assignment.network)
            .expect("releasing held flows cannot over-release");
        cluster
            .give_placement(&assignment.placement)
            .expect("releasing a held placement cannot fail");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use risa_network::NetworkConfig;
    use risa_topology::{ResourceKind, TopologyConfig};

    fn setup(algo: Algorithm) -> (Cluster, NetworkState, Scheduler) {
        let c = Cluster::new(TopologyConfig::paper());
        let n = NetworkState::new(NetworkConfig::paper(), &c);
        let s = Scheduler::new(algo, &c);
        (c, n, s)
    }

    #[test]
    fn all_algorithms_admit_on_pristine_cluster() {
        for algo in Algorithm::ALL {
            let (mut c, mut n, mut s) = setup(algo);
            let d = UnitDemand::new(2, 4, 2);
            let out = s.schedule(&mut c, &mut n, &d);
            let a = out.assigned().unwrap_or_else(|| panic!("{algo} dropped"));
            assert!(a.intra_rack, "{algo} should be intra-rack when empty");
            Scheduler::release(&mut c, &mut n, a);
            assert_eq!(c.total_available(ResourceKind::Cpu), 4608);
            assert_eq!(n.intra_used_mbps(), 0);
            c.check_invariants().unwrap();
        }
    }

    #[test]
    fn schedule_release_cycle_is_leak_free() {
        let (mut c, mut n, mut s) = setup(Algorithm::RisaBf);
        let d = UnitDemand::new(8, 8, 2);
        let mut held = vec![];
        for _ in 0..100 {
            match s.schedule(&mut c, &mut n, &d) {
                ScheduleOutcome::Assigned(a) => held.push(a),
                ScheduleOutcome::Dropped(r) => panic!("unexpected drop: {r:?}"),
            }
        }
        for a in &held {
            Scheduler::release(&mut c, &mut n, a);
        }
        assert_eq!(c.total_available(ResourceKind::Cpu), 4608);
        assert_eq!(c.total_available(ResourceKind::Ram), 4608);
        assert_eq!(c.total_available(ResourceKind::Storage), 4608);
        assert_eq!(n.intra_used_mbps(), 0);
        assert_eq!(n.inter_used_mbps(), 0);
    }

    #[test]
    fn algorithm_accessor() {
        let (_c, _n, s) = setup(Algorithm::Nalb);
        assert_eq!(s.algorithm(), Algorithm::Nalb);
    }

    /// The speculative fast-path contract: running an admit on a
    /// speculative clone, then replaying it on the original via cursor
    /// adoption + work delta, leaves the original scheduler
    /// byte-identical to having run the admit directly.
    #[test]
    fn speculative_clone_commit_matches_direct_run() {
        let d = UnitDemand::new(8, 8, 2);
        for algo in [Algorithm::Risa, Algorithm::RisaBf] {
            let (mut c, mut n, mut s) = setup(algo);
            // Advance cursors off their initial state first.
            for _ in 0..5 {
                s.schedule(&mut c, &mut n, &d).assigned().expect("admit");
            }

            // Oracle: run the 6th admit directly on a full clone.
            let (mut oc, mut on, mut os) = (c.clone(), n.clone(), s.clone());
            os.schedule(&mut oc, &mut on, &d).assigned().expect("admit");

            // Speculate on clones, commit via adopt_cursors + add_work.
            let mut spec = s.speculative_clone();
            assert_eq!(spec.work().calls, 0, "clone starts with zero work");
            assert_eq!(spec.rr_cursor(), s.rr_cursor());
            let (mut sc, mut sn) = (c.clone(), n.clone());
            let a = spec
                .schedule(&mut sc, &mut sn, &d)
                .assigned()
                .expect("admit")
                .clone();
            c.take_placement(&a.placement).expect("replay placement");
            let flows = FlowDemands::for_vm(n.config(), &d);
            n.alloc_vm(
                &c,
                a.placement.grant(ResourceKind::Cpu).box_id,
                a.placement.grant(ResourceKind::Ram).box_id,
                a.placement.grant(ResourceKind::Storage).box_id,
                &flows,
                risa_network::LinkPolicy::FirstFit,
            )
            .expect("replay flows");
            s.adopt_cursors(&spec);
            s.add_work(*spec.work());

            let canon = |s: &Scheduler| serde_json::to_string(s).expect("serialize");
            assert_eq!(canon(&s), canon(&os), "{algo}: scheduler state diverged");
            assert_eq!(s.rr_cursor(), os.rr_cursor());
        }
    }

    /// Saturating the whole cluster eventually drops for every algorithm,
    /// and the drop leaves state consistent.
    #[test]
    fn saturation_drops_cleanly() {
        let mut admitted_by_algo = std::collections::HashMap::new();
        for algo in Algorithm::ALL {
            // Narrow 2-link trunks so the network saturates before compute.
            let c = Cluster::new(TopologyConfig::paper());
            let mut netcfg = NetworkConfig::paper();
            netcfg.box_uplink_width = 2;
            netcfg.rack_uplink_width = 4;
            let mut n = NetworkState::new(netcfg, &c);
            let mut s = Scheduler::new(algo, &c);
            let mut c = c;
            // 32 units each: CPU-RAM flow = 160 Gb/s, within one link but
            // heavy enough that trunks saturate before compute does.
            let d = UnitDemand::new(32, 32, 32);
            let mut admitted = 0;
            while let ScheduleOutcome::Assigned(_) = s.schedule(&mut c, &mut n, &d) {
                admitted += 1;
                assert!(admitted < 10_000, "{algo} never saturated");
            }
            // Compute bound: 4608 / 32 = 144 VMs.
            assert!(admitted <= 144, "{algo} overcommitted: {admitted}");
            assert!(admitted >= 1, "{algo} admitted nothing");
            c.check_invariants().unwrap();
            n.check_invariants().unwrap();
            admitted_by_algo.insert(algo, admitted);
        }
        // The paper's motivation in miniature: NULB's network-oblivious
        // first-fit keeps hammering the saturated first box and drops
        // early; RISA's round-robin spreads flows over every rack trunk.
        assert!(
            admitted_by_algo[&Algorithm::Risa] > admitted_by_algo[&Algorithm::Nulb],
            "RISA ({}) should outlast NULB ({}) under trunk pressure",
            admitted_by_algo[&Algorithm::Risa],
            admitted_by_algo[&Algorithm::Nulb]
        );
    }
}
