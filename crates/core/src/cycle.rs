//! A shared steady-state scheduling workload for throughput studies.
//!
//! `risa-cli bench` and the criterion `scale` bench must measure the same
//! thing — and the differential suite's saturation history should stress
//! the same demand mix — so the cycle lives here once instead of being
//! copy-pasted per driver.

use crate::algorithm::{Algorithm, ScheduleOutcome, VmAssignment};
use crate::scheduler::Scheduler;
use risa_network::{NetworkConfig, NetworkState};
use risa_topology::{Cluster, TopologyConfig, UnitDemand};
use std::collections::VecDeque;

/// The deterministic paper-realistic demand mix used by the scaling
/// studies: CPU cycles 1..=8 units, RAM sweeps 1..=14 (Azure's reach),
/// storage alternates 1/2.
pub fn paper_mix_demand(i: u32) -> UnitDemand {
    UnitDemand::new(1 + i % 8, 1 + (i * 5) % 14, 1 + i % 2)
}

/// A self-contained schedule/release treadmill: each [`ScheduleCycle::step`]
/// admits one [`paper_mix_demand`] VM and retires the oldest resident
/// beyond a fixed window, holding the cluster at a steady mid-load so
/// per-operation cost is measurable without drifting to saturation.
#[derive(Debug)]
pub struct ScheduleCycle {
    cluster: Cluster,
    net: NetworkState,
    sched: Scheduler,
    held: VecDeque<VmAssignment>,
    window: usize,
    i: u32,
}

impl ScheduleCycle {
    /// A treadmill over a fresh paper-shaped cluster with `racks` racks.
    pub fn new(racks: u16, algo: Algorithm) -> Self {
        let cfg = TopologyConfig {
            racks,
            ..TopologyConfig::paper()
        };
        let cluster = Cluster::new(cfg);
        let net = NetworkState::new(NetworkConfig::paper(), &cluster);
        let sched = Scheduler::new(algo, &cluster);
        ScheduleCycle {
            cluster,
            net,
            sched,
            held: VecDeque::new(),
            window: 256,
            i: 0,
        }
    }

    /// One schedule (plus at most one release) operation.
    pub fn step(&mut self) {
        let i = self.i;
        self.i = self.i.wrapping_add(1);
        let d = paper_mix_demand(i);
        if let ScheduleOutcome::Assigned(a) =
            self.sched.schedule(&mut self.cluster, &mut self.net, &d)
        {
            self.held.push_back(a);
        }
        if self.held.len() > self.window {
            let a = self.held.pop_front().expect("non-empty window");
            Scheduler::release(&mut self.cluster, &mut self.net, &a);
        }
    }

    /// Currently resident VMs (peaks at the window size).
    pub fn resident(&self) -> usize {
        self.held.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_single_box() {
        let cap = TopologyConfig::paper().box_capacity_units();
        for i in 0..100 {
            let d = paper_mix_demand(i);
            assert_eq!(d, paper_mix_demand(i));
            assert!(d.max_units() <= cap);
            assert!(!d.is_zero());
        }
    }

    #[test]
    fn cycle_reaches_steady_state() {
        let mut cycle = ScheduleCycle::new(12, Algorithm::Risa);
        for _ in 0..600 {
            cycle.step();
        }
        assert_eq!(cycle.resident(), 256, "window caps residency");
        cycle.cluster.check_invariants().unwrap();
        cycle.net.check_invariants().unwrap();
    }
}
