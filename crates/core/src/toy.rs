//! Fixtures reproducing the paper's §4.3 toy examples (Tables 3 and 4).
//!
//! Table 3 describes a 2-rack DDC with two boxes per resource per rack:
//!
//! | resource | capacity/box | avail (rack0 box0, rack0 box1, rack1 box0, rack1 box1) |
//! |----------|--------------|---------------------------------------------------------|
//! | CPU      | 64 cores     | 0, 0, 64, 32 |
//! | RAM      | 64 GB        | 0, 16, 32, 16 |
//! | storage  | 512 GB       | 0, 0, 256, 512 |
//!
//! Table 4 then schedules eight CPU-only VMs (15, 10, 30, 12, 5, 8, 16,
//! 4 cores) onto rack 1. The paper tracks **core-granular** availability
//! there, so [`table4_cluster`] uses a 1-core CPU unit; [`table3_cluster`]
//! keeps the paper's 4-core unit.
//!
//! Known paper inconsistency (documented in EXPERIMENTS.md): Table 4's
//! RISA-BF column claims all eight VMs fit, but they total 100 cores
//! against 96 available — VM 6 (16 cores) cannot fit under any policy.
//! Our reproduction matches every Table 4 cell *except* that impossible
//! one, for both RISA and RISA-BF.

use risa_topology::{BoxId, Cluster, TopologyConfig, UnitDemand, UnitSizes};

/// Box ids of the Table 3 cluster, in the table's (resource, id) order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table3Ids {
    /// CPU boxes, table ids 0..=3.
    pub cpu: [BoxId; 4],
    /// RAM boxes, table ids 0..=3.
    pub ram: [BoxId; 4],
    /// Storage boxes, table ids 0..=3.
    pub sto: [BoxId; 4],
}

/// Global box ids corresponding to Table 3's per-resource ids.
///
/// Our cluster numbers boxes rack-major (rack 0: CPU 0-1, RAM 2-3, STO 4-5;
/// rack 1: CPU 6-7, RAM 8-9, STO 10-11), so Table 3's "CPU id 2" (rack 1,
/// box 0) is global box 6, and so on.
pub fn table3_ids() -> Table3Ids {
    Table3Ids {
        cpu: [BoxId(0), BoxId(1), BoxId(6), BoxId(7)],
        ram: [BoxId(2), BoxId(3), BoxId(8), BoxId(9)],
        sto: [BoxId(4), BoxId(5), BoxId(10), BoxId(11)],
    }
}

fn build(units: UnitSizes) -> Cluster {
    let cfg = TopologyConfig {
        racks: 2,
        box_mix: risa_topology::BoxMix {
            cpu: 2,
            ram: 2,
            storage: 2,
        },
        bricks_per_box: 1,
        units_per_brick: 16,
        units,
    };
    let mut c = Cluster::new(cfg);
    let ids = table3_ids();
    let u = units;

    // Capacities: CPU 64 cores, RAM 64 GB, storage 512 GB per box.
    for b in ids.cpu {
        c.set_box_capacity(b, 64 / u.cpu_cores_per_unit);
    }
    for b in ids.ram {
        c.set_box_capacity(b, 64 / u.ram_gb_per_unit);
    }
    for b in ids.sto {
        c.set_box_capacity(b, 512 / u.storage_gb_per_unit);
    }

    // Availability column of Table 3, converted to units.
    let cpu_avail = [0u32, 0, 64, 32];
    let ram_avail = [0u32, 16, 32, 16];
    let sto_avail = [0u32, 0, 256, 512];
    for (i, b) in ids.cpu.into_iter().enumerate() {
        c.force_available(b, cpu_avail[i] / u.cpu_cores_per_unit);
    }
    for (i, b) in ids.ram.into_iter().enumerate() {
        c.force_available(b, ram_avail[i] / u.ram_gb_per_unit);
    }
    for (i, b) in ids.sto.into_iter().enumerate() {
        c.force_available(b, sto_avail[i] / u.storage_gb_per_unit);
    }
    c
}

/// The Table 3 cluster at the paper's Table 1 unit sizes (4-core CPU unit).
pub fn table3_cluster() -> Cluster {
    build(UnitSizes::paper())
}

/// The Table 3 cluster with a **1-core CPU unit**, matching Table 4's
/// core-granular packing arithmetic.
pub fn table4_cluster() -> Cluster {
    build(UnitSizes {
        cpu_cores_per_unit: 1,
        ..UnitSizes::paper()
    })
}

/// The §4.3.1 "typical VM": 8 cores, 16 GB RAM, 128 GB storage.
pub fn typical_vm_demand(cluster: &Cluster) -> UnitDemand {
    UnitDemand::from_natural(&cluster.config().units, 8, 16, 128)
}

/// Table 4's CPU-only request sequence, in cores.
pub const TABLE4_CPU_REQUESTS: [u32; 8] = [15, 10, 30, 12, 5, 8, 16, 4];

#[cfg(test)]
mod tests {
    use super::*;
    use risa_topology::{RackId, ResourceKind};

    #[test]
    fn table3_availability_loaded_exactly() {
        let c = table3_cluster();
        let ids = table3_ids();
        // CPU in 4-core units.
        assert_eq!(c.available(ids.cpu[0]), 0);
        assert_eq!(c.available(ids.cpu[2]), 16);
        assert_eq!(c.available(ids.cpu[3]), 8);
        // RAM in 4 GB units.
        assert_eq!(c.available(ids.ram[1]), 4);
        assert_eq!(c.available(ids.ram[2]), 8);
        // Storage in 64 GB units; capacity 512 GB = 8 units.
        assert_eq!(c.box_state(ids.sto[0]).capacity, 8);
        assert_eq!(c.available(ids.sto[2]), 4);
        assert_eq!(c.available(ids.sto[3]), 8);
        c.check_invariants().unwrap();
    }

    #[test]
    fn rack0_cannot_host_the_typical_vm() {
        let c = table3_cluster();
        let d = typical_vm_demand(&c);
        assert!(!c.rack_fits(RackId(0), &d));
        assert!(c.rack_fits(RackId(1), &d));
    }

    #[test]
    fn table4_cluster_is_core_granular() {
        let c = table4_cluster();
        let ids = table3_ids();
        assert_eq!(c.available(ids.cpu[2]), 64);
        assert_eq!(c.available(ids.cpu[3]), 32);
        assert_eq!(c.config().units.cpu_cores_per_unit, 1);
        // RAM/storage untouched by the unit change.
        assert_eq!(c.available(ids.ram[2]), 8);
    }

    #[test]
    fn table4_totals_expose_the_paper_inconsistency() {
        // 100 cores demanded vs 96 available: VM 6 cannot fit.
        let total: u32 = TABLE4_CPU_REQUESTS.iter().sum();
        let c = table4_cluster();
        let avail = c
            .boxes_in_rack(RackId(1), ResourceKind::Cpu)
            .iter()
            .map(|&b| c.available(b))
            .sum::<u32>();
        assert_eq!(total, 100);
        assert_eq!(avail, 96);
    }
}
