//! RISA and RISA-BF (Algorithms 1 and 3 — the paper's contribution).
//!
//! Per VM:
//! 1. Build `INTRA_RACK_POOL`: every rack whose per-resource
//!    max-available boxes can each host the VM's whole demand of that
//!    resource (O(racks) thanks to the cluster's cached maxima).
//! 2. If the pool is non-empty, visit it **round-robin** (a persistent
//!    cursor continues after the last admitted rack, balancing load across
//!    racks). The first rack whose intra-rack network can carry the VM's
//!    flows receives all three grants:
//!    * **RISA** picks boxes by *next-fit*: a persistent per-rack,
//!      per-resource cursor scans from the last-used box (this is the scan
//!      that reproduces the paper's Table 4 trace exactly);
//!    * **RISA-BF** picks the *best-fit* box — the fullest box that still
//!      fits, reducing stranding (§4.2, Algorithm 3).
//! 3. If the pool is empty or no pool rack can carry the flows, build the
//!    `SUPER_RACK` and fall back to NULB restricted to it.

use crate::algorithm::{DropReason, VmAssignment};
use crate::nulb::{nulb_schedule, NulbParams, Scratch, SuperRack};
use crate::work::WorkCounters;
use risa_network::{FlowDemands, LinkPolicy, NetworkState};
use risa_topology::{
    BoxAllocation, BoxId, Cluster, RackId, ResourceKind, UnitDemand, VmPlacement, ALL_RESOURCES,
};
use serde::{Deserialize, Serialize};

/// Persistent RISA state: the rack round-robin cursor and the per-rack,
/// per-resource next-fit box cursors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct RisaState {
    /// Next rack id the round-robin should prefer.
    rr_cursor: u16,
    /// Per rack, per resource kind: index (within the rack's box list) of
    /// the last-used box. Only RISA (not RISA-BF) consults these.
    box_cursor: Vec<[usize; 3]>,
    /// Best-fit box selection (RISA-BF) instead of next-fit (RISA).
    best_fit: bool,
}

impl RisaState {
    pub(crate) fn new(cluster: &Cluster, best_fit: bool) -> Self {
        RisaState {
            rr_cursor: 0,
            box_cursor: vec![[0; 3]; cluster.num_racks() as usize],
            best_fit,
        }
    }

    /// The round-robin cursor: the pool rack the next admit probe starts
    /// from. Read by the speculative executor's conflict detector.
    pub(crate) fn rr_cursor(&self) -> u16 {
        self.rr_cursor
    }

    /// Pick a box for `kind` within `rack`. The returned position only
    /// feeds the next-fit cursor; best-fit (which never commits cursors)
    /// reports 0.
    fn pick_box(
        &self,
        cluster: &Cluster,
        rack: RackId,
        kind: ResourceKind,
        units: u32,
        work: &mut WorkCounters,
    ) -> Option<(BoxId, usize)> {
        let boxes = cluster.boxes_in_rack(rack, kind);
        if self.best_fit {
            // Best-fit: the box with the least availability that still
            // fits; ties to the lower id. Served by the placement index's
            // sorted availability set in O(log); the counter keeps the
            // naive full-rack-scan cost model.
            work.boxes_scanned += boxes.len() as u64;
            let b = cluster.best_fit_in_rack(rack, kind, units)?;
            Some((b, 0))
        } else {
            // Next-fit: scan from the cursor (inclusive), wrapping.
            let start = self.box_cursor[rack.0 as usize][kind.index()].min(boxes.len() - 1);
            (0..boxes.len())
                .map(|i| (start + i) % boxes.len())
                .find(|&pos| {
                    work.boxes_scanned += 1;
                    !cluster.is_failed(boxes[pos]) && cluster.available(boxes[pos]) >= units
                })
                .map(|pos| (boxes[pos], pos))
        }
    }

    /// Attempt the whole intra-rack assignment inside `rack`.
    fn try_rack(
        &mut self,
        cluster: &mut Cluster,
        net: &mut NetworkState,
        rack: RackId,
        demand: &UnitDemand,
        flows: &FlowDemands,
        work: &mut WorkCounters,
    ) -> Option<VmAssignment> {
        // Cheap bandwidth pre-check (Alg. 1's AVAIL_INTRA_RACK_NET test);
        // it reads the max-free link of each box trunk in the rack.
        for kind in ALL_RESOURCES {
            work.links_scanned += cluster.boxes_in_rack(rack, kind).len() as u64;
        }
        if !net.rack_intra_feasible(cluster, rack, flows) {
            return None;
        }
        let mut grants = [BoxAllocation {
            box_id: BoxId(0),
            units: 0,
        }; 3];
        let mut positions = [0usize; 3];
        for kind in ALL_RESOURCES {
            let (b, pos) = self.pick_box(cluster, rack, kind, demand.get(kind), work)?;
            grants[kind.index()] = BoxAllocation {
                box_id: b,
                units: demand.get(kind),
            };
            positions[kind.index()] = pos;
        }
        let placement = VmPlacement { grants };
        cluster
            .take_placement(&placement)
            .expect("pick_box verified availability");
        match net.alloc_vm(
            cluster,
            placement.grant(ResourceKind::Cpu).box_id,
            placement.grant(ResourceKind::Ram).box_id,
            placement.grant(ResourceKind::Storage).box_id,
            flows,
            LinkPolicy::FirstFit,
        ) {
            Ok(network) => {
                if !self.best_fit {
                    // Commit the next-fit cursors to the chosen boxes.
                    for kind in ALL_RESOURCES {
                        self.box_cursor[rack.0 as usize][kind.index()] = positions[kind.index()];
                    }
                }
                Some(VmAssignment {
                    placement,
                    network,
                    intra_rack: true,
                    used_fallback: false,
                })
            }
            Err(_) => {
                cluster
                    .give_placement(&placement)
                    .expect("rollback of held placement");
                None
            }
        }
    }

    /// Next `INTRA_RACK_POOL` member at or after `from`, wrapping once.
    /// Live successor queries over the placement index replace the seed's
    /// per-VM pool vector; failed `try_rack` attempts roll every mutation
    /// back, so the live query sees exactly the snapshot the seed built.
    fn pool_rack_from(&self, cluster: &Cluster, demand: &UnitDemand, from: u16) -> Option<RackId> {
        cluster
            .next_pool_rack(demand, from)
            .or_else(|| cluster.next_pool_rack(demand, 0))
    }

    /// Algorithm 1 / 3 for one VM.
    pub(crate) fn schedule(
        &mut self,
        cluster: &mut Cluster,
        net: &mut NetworkState,
        demand: &UnitDemand,
        flows: &FlowDemands,
        work: &mut WorkCounters,
        scratch: &mut Scratch,
    ) -> Result<VmAssignment, DropReason> {
        // The seed built INTRA_RACK_POOL with an O(racks) membership scan
        // per VM; the counter keeps charging that §4.2 cost model while
        // the successor queries below answer in O(log racks).
        work.racks_scanned += cluster.num_racks() as u64;
        // Round-robin: start at the first pool rack ≥ the cursor (wrapping
        // to the lowest pool rack), then visit each pool member once.
        if let Some(first) = self.pool_rack_from(cluster, demand, self.rr_cursor) {
            let mut rack = first;
            loop {
                if let Some(a) = self.try_rack(cluster, net, rack, demand, flows, work) {
                    self.rr_cursor = (rack.0 + 1) % cluster.num_racks();
                    return Ok(a);
                }
                match self.pool_rack_from(cluster, demand, rack.0 + 1) {
                    Some(next) if next != first => rack = next,
                    _ => break, // wrapped through the whole pool
                }
            }
        }
        // Fallback: SUPER_RACK + NULB (Alg. 1's else branch).
        work.racks_scanned += cluster.num_racks() as u64;
        let sr = SuperRack::build(cluster, demand);
        if sr.infeasible() {
            return Err(DropReason::Compute);
        }
        nulb_schedule(
            cluster,
            net,
            demand,
            flows,
            Some(&sr),
            NulbParams::nulb(),
            work,
            scratch,
        )
        .map(|mut a| {
            a.used_fallback = true;
            a
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy;
    use risa_network::NetworkConfig;
    use risa_topology::TopologyConfig;

    fn net_for(c: &Cluster) -> NetworkState {
        NetworkState::new(NetworkConfig::paper(), c)
    }

    fn flows(d: &UnitDemand) -> FlowDemands {
        FlowDemands::for_vm(&NetworkConfig::paper(), d)
    }

    /// §4.3: "Let us assume that there are enough network resources" — the
    /// toy traces are compute-only, so Table 4 runs with zero-demand flows.
    fn no_flows() -> FlowDemands {
        FlowDemands {
            cpu_ram_mbps: 0,
            ram_sto_mbps: 0,
        }
    }

    /// §4.3.1 toy example 1: RISA assigns table ids (2, 2, 2) — all rack 1,
    /// no inter-rack usage.
    #[test]
    fn toy_example1_risa_stays_intra_rack() {
        let mut c = toy::table3_cluster();
        let mut n = net_for(&c);
        let d = toy::typical_vm_demand(&c);
        let mut s = RisaState::new(&c, false);
        let a = s
            .schedule(
                &mut c,
                &mut n,
                &d,
                &flows(&d),
                &mut WorkCounters::new(),
                &mut Scratch::default(),
            )
            .unwrap();
        let ids = toy::table3_ids();
        assert!(a.intra_rack);
        assert!(!a.used_fallback);
        assert_eq!(a.placement.grant(ResourceKind::Cpu).box_id, ids.cpu[2]);
        assert_eq!(a.placement.grant(ResourceKind::Ram).box_id, ids.ram[2]);
        assert_eq!(a.placement.grant(ResourceKind::Storage).box_id, ids.sto[2]);
        assert_eq!(n.inter_used_mbps(), 0);
    }

    /// Table 4, RISA column: next-fit packing of the eight CPU-only VMs —
    /// boxes 0,0,0,1,1,1,drop,1 (rack-1 box indexes).
    #[test]
    fn table4_risa_next_fit_trace() {
        let mut c = toy::table4_cluster();
        let mut n = net_for(&c);
        let mut s = RisaState::new(&c, false);
        let ids = toy::table3_ids();
        let mut trace: Vec<Option<u8>> = vec![];
        for cores in toy::TABLE4_CPU_REQUESTS {
            let d = UnitDemand::from_natural(&c.config().units, cores, 0, 0);
            match s.schedule(
                &mut c,
                &mut n,
                &d,
                &no_flows(),
                &mut WorkCounters::new(),
                &mut Scratch::default(),
            ) {
                Ok(a) => {
                    let b = a.placement.grant(ResourceKind::Cpu).box_id;
                    let idx = if b == ids.cpu[2] {
                        0
                    } else if b == ids.cpu[3] {
                        1
                    } else {
                        panic!("CPU landed outside rack 1: {b}")
                    };
                    trace.push(Some(idx));
                }
                Err(_) => trace.push(None),
            }
        }
        assert_eq!(
            trace,
            vec![
                Some(0),
                Some(0),
                Some(0),
                Some(1),
                Some(1),
                Some(1),
                None, // VM 6 (16 cores): 9 + 7 cores left, unplaceable
                Some(1),
            ],
            "Table 4 RISA column"
        );
    }

    /// Table 4, RISA-BF column: best-fit alternation 1,1,0,0,1,0,(drop),0.
    /// The paper prints VM 6 as box 0, but Table 4 demands 100 cores of a
    /// 96-core rack — VM 6 is arithmetically unplaceable (EXPERIMENTS.md).
    #[test]
    fn table4_risa_bf_best_fit_trace() {
        let mut c = toy::table4_cluster();
        let mut n = net_for(&c);
        let mut s = RisaState::new(&c, true);
        let ids = toy::table3_ids();
        let mut trace: Vec<Option<u8>> = vec![];
        for cores in toy::TABLE4_CPU_REQUESTS {
            let d = UnitDemand::from_natural(&c.config().units, cores, 0, 0);
            match s.schedule(
                &mut c,
                &mut n,
                &d,
                &no_flows(),
                &mut WorkCounters::new(),
                &mut Scratch::default(),
            ) {
                Ok(a) => {
                    let b = a.placement.grant(ResourceKind::Cpu).box_id;
                    trace.push(Some(u8::from(b == ids.cpu[3])));
                }
                Err(_) => trace.push(None),
            }
        }
        assert_eq!(
            trace,
            vec![
                Some(1),
                Some(1),
                Some(0),
                Some(0),
                Some(1),
                Some(0),
                None,
                Some(0),
            ],
            "Table 4 RISA-BF column (VM 6 corrected per EXPERIMENTS.md)"
        );
    }

    /// RISA-BF packs strictly more of Table 4 than first-fit-style RISA
    /// would if the last VM were larger — the §4.3.2 point that best-fit
    /// reduces stranding.
    #[test]
    fn best_fit_leaves_larger_contiguous_hole() {
        // After vms 0..=5: RISA leaves (9, 7) cores; RISA-BF leaves (14, 2).
        let run = |best_fit: bool| -> Vec<u32> {
            let mut c = toy::table4_cluster();
            let mut n = net_for(&c);
            let mut s = RisaState::new(&c, best_fit);
            for cores in &toy::TABLE4_CPU_REQUESTS[..6] {
                let d = UnitDemand::from_natural(&c.config().units, *cores, 0, 0);
                s.schedule(
                    &mut c,
                    &mut n,
                    &d,
                    &no_flows(),
                    &mut WorkCounters::new(),
                    &mut Scratch::default(),
                )
                .unwrap();
            }
            let ids = toy::table3_ids();
            vec![c.available(ids.cpu[2]), c.available(ids.cpu[3])]
        };
        assert_eq!(run(false), vec![9, 7]);
        assert_eq!(run(true), vec![14, 2]);
        // A 14-core VM now fits under best-fit but not under next-fit.
        assert!(run(true).iter().any(|&a| a >= 14));
        assert!(!run(false).iter().any(|&a| a >= 14));
    }

    /// Round-robin rotates across racks of the pool.
    #[test]
    fn round_robin_spreads_across_racks() {
        let mut c = Cluster::new(TopologyConfig::paper());
        let mut n = net_for(&c);
        let mut s = RisaState::new(&c, false);
        let d = UnitDemand::new(2, 4, 2);
        let mut racks = vec![];
        for _ in 0..18 {
            let a = s
                .schedule(
                    &mut c,
                    &mut n,
                    &d,
                    &flows(&d),
                    &mut WorkCounters::new(),
                    &mut Scratch::default(),
                )
                .unwrap();
            racks.push(c.rack_of(a.placement.grant(ResourceKind::Cpu).box_id));
        }
        // Every rack used exactly once before any repeats.
        let expected: Vec<RackId> = (0..18).map(RackId).collect();
        assert_eq!(racks, expected);
        // The 19th wraps back to rack 0.
        let a = s
            .schedule(
                &mut c,
                &mut n,
                &d,
                &flows(&d),
                &mut WorkCounters::new(),
                &mut Scratch::default(),
            )
            .unwrap();
        assert_eq!(
            c.rack_of(a.placement.grant(ResourceKind::Cpu).box_id),
            RackId(0)
        );
    }

    /// Empty pool triggers the SUPER_RACK/NULB fallback and flags it.
    #[test]
    fn fallback_on_empty_pool() {
        let mut c = toy::table3_cluster();
        let mut n = net_for(&c);
        // Demand: RAM 8u exists only in rack 1; CPU 2u only rack 1; but
        // require 5u storage — rack 1's max is 8u... make the pool empty by
        // demanding CPU 2u + RAM 4u + storage 5u and draining rack1 CPU.
        let ids = toy::table3_ids();
        c.force_available(ids.cpu[2], 1); // rack1 box0: 1 unit
        c.force_available(ids.cpu[3], 2); // rack1 box1: 2 units
                                          // Pool: rack needs cpu>=2 (rack1 box1 ok), ram>=4 (rack1 ok),
                                          // sto>=2 (rack1 ok) → pool=[rack1]. Drain storage to kill the pool.
        c.force_available(ids.sto[2], 1);
        c.force_available(ids.sto[3], 1);
        let d = UnitDemand::new(2, 4, 2);
        let mut s = RisaState::new(&c, false);
        // No rack can host storage 2u in one box → SUPER_RACK infeasible.
        let err = s
            .schedule(
                &mut c,
                &mut n,
                &d,
                &flows(&d),
                &mut WorkCounters::new(),
                &mut Scratch::default(),
            )
            .unwrap_err();
        assert_eq!(err, DropReason::Compute);

        // Give rack 0 storage back: pool still empty (rack0 lacks CPU),
        // but SUPER_RACK is feasible → inter-rack fallback assignment.
        c.force_available(ids.sto[0], 8);
        let a = s
            .schedule(
                &mut c,
                &mut n,
                &d,
                &flows(&d),
                &mut WorkCounters::new(),
                &mut Scratch::default(),
            )
            .unwrap();
        assert!(a.used_fallback);
        assert!(!a.intra_rack, "CPU in rack 1, storage only in rack 0");
    }

    /// Network-saturated pool racks are skipped; the next pool rack wins.
    #[test]
    fn pool_rack_with_saturated_network_is_skipped() {
        let mut c = Cluster::new(TopologyConfig::paper());
        let mut n = net_for(&c);
        // Saturate every box uplink in rack 0 pairwise: eight full-link
        // flows between each pair fill both endpoint trunks exactly.
        for (a, b) in [(0u32, 1u32), (2, 3), (4, 5)] {
            for _ in 0..8 {
                n.alloc_flow(&c, BoxId(a), BoxId(b), 200_000, LinkPolicy::FirstFit)
                    .unwrap();
            }
        }
        let d = UnitDemand::new(2, 4, 2);
        let mut s = RisaState::new(&c, false);
        let a = s
            .schedule(
                &mut c,
                &mut n,
                &d,
                &flows(&d),
                &mut WorkCounters::new(),
                &mut Scratch::default(),
            )
            .unwrap();
        assert!(a.intra_rack);
        assert_eq!(
            c.rack_of(a.placement.grant(ResourceKind::Cpu).box_id),
            RackId(1),
            "rack 0 has compute but no bandwidth; round-robin moves on"
        );
    }
}
