//! Shared scheduler vocabulary: algorithm ids, outcomes, assignments.

use risa_network::VmNetAllocation;
use risa_topology::VmPlacement;
use serde::{Deserialize, Serialize};

/// The four algorithms of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Network-unaware locality-based baseline (Zervas et al., Alg. 2).
    Nulb,
    /// Network-aware locality-based baseline (Zervas et al.).
    Nalb,
    /// Round-robin intra-rack friendly scheduling (Alg. 1, this paper).
    Risa,
    /// RISA with best-fit within-rack packing (Alg. 3).
    RisaBf,
}

impl Algorithm {
    /// All four, in the paper's presentation order.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::Nulb,
        Algorithm::Nalb,
        Algorithm::Risa,
        Algorithm::RisaBf,
    ];

    /// Report label matching the paper's figures.
    pub const fn label(self) -> &'static str {
        match self {
            Algorithm::Nulb => "NULB",
            Algorithm::Nalb => "NALB",
            Algorithm::Risa => "RISA",
            Algorithm::RisaBf => "RISA-BF",
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for Algorithm {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "NULB" => Ok(Algorithm::Nulb),
            "NALB" => Ok(Algorithm::Nalb),
            "RISA" => Ok(Algorithm::Risa),
            "RISA-BF" | "RISABF" | "RISA_BF" => Ok(Algorithm::RisaBf),
            other => Err(format!("unknown algorithm '{other}'")),
        }
    }
}

/// Why a VM was dropped (the paper drops on either phase failing, §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// No box set could satisfy the compute demand.
    Compute,
    /// Compute found, but some link lacked bandwidth.
    Network,
}

/// A successfully admitted VM: its compute grants and reserved flows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmAssignment {
    /// One box grant per resource kind.
    pub placement: VmPlacement,
    /// The two reserved flows.
    pub network: VmNetAllocation,
    /// True when all three boxes share a rack (the paper's headline metric).
    pub intra_rack: bool,
    /// True when RISA/RISA-BF had to fall back to the NULB/SUPER_RACK path.
    pub used_fallback: bool,
}

/// Result of one scheduling attempt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScheduleOutcome {
    /// The VM was admitted.
    Assigned(VmAssignment),
    /// The VM was dropped.
    Dropped(DropReason),
}

impl ScheduleOutcome {
    /// The assignment, if admitted.
    pub fn assigned(&self) -> Option<&VmAssignment> {
        match self {
            ScheduleOutcome::Assigned(a) => Some(a),
            ScheduleOutcome::Dropped(_) => None,
        }
    }

    /// True when the VM was admitted.
    pub fn is_assigned(&self) -> bool {
        matches!(self, ScheduleOutcome::Assigned(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(Algorithm::Nulb.label(), "NULB");
        assert_eq!(Algorithm::RisaBf.to_string(), "RISA-BF");
        assert_eq!(Algorithm::ALL.len(), 4);
    }

    #[test]
    fn parse_roundtrip() {
        for a in Algorithm::ALL {
            let parsed: Algorithm = a.label().parse().unwrap();
            assert_eq!(parsed, a);
        }
        assert!("frob".parse::<Algorithm>().is_err());
        assert_eq!("risa-bf".parse::<Algorithm>().unwrap(), Algorithm::RisaBf);
    }

    #[test]
    fn outcome_accessors() {
        let d = ScheduleOutcome::Dropped(DropReason::Network);
        assert!(!d.is_assigned());
        assert!(d.assigned().is_none());
    }
}
