//! The live bandwidth ledger and flow allocation with rollback.

use crate::config::NetworkConfig;
use crate::demand::FlowDemands;
use crate::trunk::{Trunk, TrunkId};
use risa_topology::{BoxId, Cluster, RackId};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BTreeSet;

/// How a link is chosen within a trunk — the paper's §4.1 distinction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkPolicy {
    /// First link with enough free bandwidth (NULB, and RISA's AllocNet).
    FirstFit,
    /// Link with the most free bandwidth (NALB).
    MostAvailable,
}

/// Bandwidth reserved on one specific link of one trunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopGrant {
    /// Which trunk.
    pub trunk: TrunkId,
    /// Link index within the trunk.
    pub link: usize,
    /// Reserved bandwidth.
    pub mbps: u64,
}

/// A fully reserved end-to-end flow.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowPath {
    /// Per-trunk grants along the path (2 hops intra-rack, 4 inter-rack).
    pub hops: Vec<HopGrant>,
    /// Whether the flow crosses the inter-rack switch.
    pub inter_rack: bool,
    /// The flow's bandwidth.
    pub mbps: u64,
}

/// The two reserved flows of one admitted VM.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmNetAllocation {
    /// CPU↔RAM flow.
    pub cpu_ram: FlowPath,
    /// RAM↔storage flow.
    pub ram_sto: FlowPath,
}

impl VmNetAllocation {
    /// True when either flow crosses racks.
    pub fn is_inter_rack(&self) -> bool {
        self.cpu_ram.inter_rack || self.ram_sto.inter_rack
    }

    /// Total bandwidth reserved across both flows (counting each once, not
    /// per hop).
    pub fn total_mbps(&self) -> u64 {
        self.cpu_ram.mbps + self.ram_sto.mbps
    }
}

/// Why a flow could not be wired, or a trunk mutation was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetError {
    /// No up link in `trunk` had `needed_mbps` free.
    InsufficientBandwidth {
        /// The saturated trunk.
        trunk: TrunkId,
        /// The demand that did not fit.
        needed_mbps: u64,
    },
    /// A per-link operation on `trunk` failed (over-release, double
    /// fault, spurious repair, bad link index).
    Trunk {
        /// The trunk the operation targeted.
        trunk: TrunkId,
        /// The underlying per-link failure.
        error: crate::trunk::TrunkError,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::InsufficientBandwidth { trunk, needed_mbps } => {
                write!(f, "no link in {trunk:?} has {needed_mbps} Mb/s free")
            }
            NetError::Trunk { trunk, error } => write!(f, "{trunk:?}: {error}"),
        }
    }
}

impl std::error::Error for NetError {}

/// The mutable network: one trunk per box and one per rack, plus an
/// incrementally-maintained ordering of racks by free uplink bandwidth —
/// the structure that lets NALB's "modified BFS" read its neighbour order
/// instead of re-sorting every rack per probe.
#[derive(Debug, Clone)]
pub struct NetworkState {
    cfg: NetworkConfig,
    box_trunks: Vec<Trunk>,
    rack_trunks: Vec<Trunk>,
    /// `(free_mbps, Reverse(rack))` ascending, so reverse iteration yields
    /// NALB's neighbour order: descending bandwidth, ties to the lower id.
    rack_bw: BTreeSet<(u64, Reverse<u16>)>,
}

impl NetworkState {
    /// Build a pristine network mirroring `cluster`'s boxes and racks.
    pub fn new(cfg: NetworkConfig, cluster: &Cluster) -> Self {
        cfg.validate().expect("invalid network configuration");
        let rack_trunks: Vec<Trunk> = (0..cluster.num_racks())
            .map(|_| Trunk::new(cfg.rack_uplink_width, cfg.link_mbps))
            .collect();
        let rack_bw = Self::build_rack_bw(&rack_trunks);
        NetworkState {
            box_trunks: (0..cluster.num_boxes())
                .map(|_| Trunk::new(cfg.box_uplink_width, cfg.link_mbps))
                .collect(),
            rack_trunks,
            rack_bw,
            cfg,
        }
    }

    fn build_rack_bw(rack_trunks: &[Trunk]) -> BTreeSet<(u64, Reverse<u16>)> {
        rack_trunks
            .iter()
            .enumerate()
            .map(|(r, t)| (t.free_mbps(), Reverse(r as u16)))
            .collect()
    }

    /// The configuration in force.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Immutable access to a trunk.
    pub fn trunk(&self, id: TrunkId) -> &Trunk {
        match id {
            TrunkId::BoxUplink(b) => &self.box_trunks[b as usize],
            TrunkId::RackUplink(r) => &self.rack_trunks[r as usize],
        }
    }

    /// Reserve on one link of one trunk, keeping the rack-bandwidth
    /// ordering coherent. Every mutation funnels through here or
    /// [`NetworkState::trunk_give`].
    fn trunk_take(&mut self, id: TrunkId, link: usize, mbps: u64) -> bool {
        match id {
            TrunkId::BoxUplink(b) => self.box_trunks[b as usize].take(link, mbps),
            TrunkId::RackUplink(r) => {
                let trunk = &mut self.rack_trunks[r as usize];
                let before = trunk.free_mbps();
                let taken = trunk.take(link, mbps);
                if taken {
                    let after = trunk.free_mbps();
                    self.rack_bw.remove(&(before, Reverse(r)));
                    self.rack_bw.insert((after, Reverse(r)));
                }
                taken
            }
        }
    }

    /// Release on one link of one trunk (companion to
    /// [`NetworkState::trunk_take`]). Over-release propagates as a loud
    /// typed error with the state untouched.
    fn trunk_give(&mut self, id: TrunkId, link: usize, mbps: u64) -> Result<(), NetError> {
        match id {
            TrunkId::BoxUplink(b) => self.box_trunks[b as usize]
                .give(link, mbps)
                .map_err(|error| NetError::Trunk { trunk: id, error }),
            TrunkId::RackUplink(r) => {
                let trunk = &mut self.rack_trunks[r as usize];
                let before = trunk.free_mbps();
                trunk
                    .give(link, mbps)
                    .map_err(|error| NetError::Trunk { trunk: id, error })?;
                let after = trunk.free_mbps();
                self.rack_bw.remove(&(before, Reverse(r)));
                self.rack_bw.insert((after, Reverse(r)));
                Ok(())
            }
        }
    }

    /// Take one link of one trunk down. New flows stop landing on the
    /// link, its free bandwidth becomes stranded, and (for rack uplinks)
    /// the NALB neighbour ordering re-ranks the rack immediately.
    pub fn fail_link(&mut self, id: TrunkId, link: usize) -> Result<(), NetError> {
        self.with_link_state(id, |t| t.fail_link(link))
    }

    /// Bring one link of one trunk back up, re-entering its preserved free
    /// bandwidth into the schedulable aggregates and neighbour ordering.
    pub fn restore_link(&mut self, id: TrunkId, link: usize) -> Result<(), NetError> {
        self.with_link_state(id, |t| t.restore_link(link))
    }

    fn with_link_state(
        &mut self,
        id: TrunkId,
        op: impl FnOnce(&mut Trunk) -> Result<(), crate::trunk::TrunkError>,
    ) -> Result<(), NetError> {
        match id {
            TrunkId::BoxUplink(b) => op(&mut self.box_trunks[b as usize])
                .map_err(|error| NetError::Trunk { trunk: id, error }),
            TrunkId::RackUplink(r) => {
                let trunk = &mut self.rack_trunks[r as usize];
                let before = trunk.free_mbps();
                op(trunk).map_err(|error| NetError::Trunk { trunk: id, error })?;
                let after = trunk.free_mbps();
                self.rack_bw.remove(&(before, Reverse(r)));
                self.rack_bw.insert((after, Reverse(r)));
                Ok(())
            }
        }
    }

    /// Racks ordered by descending free uplink bandwidth, ties to the
    /// lower rack id — NALB's modified-BFS neighbour order, read from the
    /// incremental ordering instead of sorting per probe.
    pub fn racks_by_free_bw_desc(&self) -> impl Iterator<Item = RackId> + '_ {
        self.rack_bw.iter().rev().map(|&(_, Reverse(r))| RackId(r))
    }

    /// Total free bandwidth on a box's uplink trunk (NALB's sort key).
    pub fn box_uplink_free_mbps(&self, b: BoxId) -> u64 {
        self.box_trunks[b.0 as usize].free_mbps()
    }

    /// Total free bandwidth on a rack's uplink trunk.
    pub fn rack_uplink_free_mbps(&self, r: RackId) -> u64 {
        self.rack_trunks[r.0 as usize].free_mbps()
    }

    /// The trunks an `src → dst` flow must cross, in order.
    fn path_trunks(cluster: &Cluster, src: BoxId, dst: BoxId) -> (Vec<TrunkId>, bool) {
        let (ra, rb) = (cluster.rack_of(src), cluster.rack_of(dst));
        if src == dst {
            // Both endpoints in the same box: stays on the box's internal
            // electronic crossbar, no optical trunk crossed. (Cannot happen
            // with single-resource boxes, but the model stays total.)
            (vec![], false)
        } else if ra == rb {
            (
                vec![TrunkId::BoxUplink(src.0), TrunkId::BoxUplink(dst.0)],
                false,
            )
        } else {
            (
                vec![
                    TrunkId::BoxUplink(src.0),
                    TrunkId::RackUplink(ra.0),
                    TrunkId::RackUplink(rb.0),
                    TrunkId::BoxUplink(dst.0),
                ],
                true,
            )
        }
    }

    /// Reserve one flow of `mbps` between two boxes. All-or-nothing: on
    /// failure every hop taken so far is rolled back.
    pub fn alloc_flow(
        &mut self,
        cluster: &Cluster,
        src: BoxId,
        dst: BoxId,
        mbps: u64,
        policy: LinkPolicy,
    ) -> Result<FlowPath, NetError> {
        let (trunks, inter_rack) = Self::path_trunks(cluster, src, dst);
        let mut hops: Vec<HopGrant> = Vec::with_capacity(trunks.len());
        for tid in trunks {
            let trunk = self.trunk(tid);
            let link = match policy {
                LinkPolicy::FirstFit => trunk.first_fit(mbps),
                LinkPolicy::MostAvailable => trunk.most_available(mbps),
            };
            match link {
                Some(i) => {
                    let taken = self.trunk_take(tid, i, mbps);
                    debug_assert!(taken, "selected link was checked to fit");
                    hops.push(HopGrant {
                        trunk: tid,
                        link: i,
                        mbps,
                    });
                }
                None => {
                    for h in &hops {
                        self.trunk_give(h.trunk, h.link, h.mbps)
                            .expect("rollback replays grants just taken");
                    }
                    return Err(NetError::InsufficientBandwidth {
                        trunk: tid,
                        needed_mbps: mbps,
                    });
                }
            }
        }
        Ok(FlowPath {
            hops,
            inter_rack,
            mbps,
        })
    }

    /// Return every hop of a flow. Fails loudly (typed, state mostly
    /// untouched — hops before the bad one are already released) when a
    /// hop replay would over-release its link.
    pub fn release_flow(&mut self, path: &FlowPath) -> Result<(), NetError> {
        for h in &path.hops {
            self.trunk_give(h.trunk, h.link, h.mbps)?;
        }
        Ok(())
    }

    /// Re-reserve a flow on exactly its recorded hops — the inverse of
    /// [`NetworkState::release_flow`]. The speculative executor's commit
    /// layer uses this to replay a conflict-validated speculated
    /// allocation without re-running link selection (so the replay is
    /// independent of the [`LinkPolicy`] the algorithm used). All-or-
    /// nothing: on failure every hop taken so far is rolled back.
    pub fn replay_flow(&mut self, path: &FlowPath) -> Result<(), NetError> {
        for (i, h) in path.hops.iter().enumerate() {
            if !self.trunk_take(h.trunk, h.link, h.mbps) {
                for done in &path.hops[..i] {
                    self.trunk_give(done.trunk, done.link, done.mbps)
                        .expect("rollback replays grants just taken");
                }
                return Err(NetError::InsufficientBandwidth {
                    trunk: h.trunk,
                    needed_mbps: h.mbps,
                });
            }
        }
        Ok(())
    }

    /// Re-reserve both flows of a VM on their recorded hops, atomically
    /// (see [`NetworkState::replay_flow`]).
    pub fn replay_vm(&mut self, alloc: &VmNetAllocation) -> Result<(), NetError> {
        self.replay_flow(&alloc.cpu_ram)?;
        if let Err(e) = self.replay_flow(&alloc.ram_sto) {
            self.release_flow(&alloc.cpu_ram)
                .expect("rollback replays the flow just granted");
            return Err(e);
        }
        Ok(())
    }

    /// Reserve both flows of a VM (CPU↔RAM then RAM↔storage), atomically.
    pub fn alloc_vm(
        &mut self,
        cluster: &Cluster,
        cpu_box: BoxId,
        ram_box: BoxId,
        sto_box: BoxId,
        demand: &FlowDemands,
        policy: LinkPolicy,
    ) -> Result<VmNetAllocation, NetError> {
        let cpu_ram = self.alloc_flow(cluster, cpu_box, ram_box, demand.cpu_ram_mbps, policy)?;
        match self.alloc_flow(cluster, ram_box, sto_box, demand.ram_sto_mbps, policy) {
            Ok(ram_sto) => Ok(VmNetAllocation { cpu_ram, ram_sto }),
            Err(e) => {
                self.release_flow(&cpu_ram)
                    .expect("rollback replays the flow just granted");
                Err(e)
            }
        }
    }

    /// Release both flows of a VM. Propagates the first over-release as a
    /// loud typed error.
    pub fn release_vm(&mut self, alloc: &VmNetAllocation) -> Result<(), NetError> {
        self.release_flow(&alloc.cpu_ram)?;
        self.release_flow(&alloc.ram_sto)
    }

    /// Cheap feasibility pre-check used by RISA's
    /// `AVAIL_INTRA_RACK_NET ≠ ∅` test (Alg. 1): could `rack` plausibly
    /// carry the VM's two intra-rack flows?
    ///
    /// Necessary (not sufficient) conditions: some CPU box uplink fits the
    /// CPU-RAM flow, some storage box uplink fits the RAM-storage flow, and
    /// some RAM box trunk can carry both flows (on one link or two). The
    /// definitive answer is still the actual [`NetworkState::alloc_vm`],
    /// which the scheduler performs afterwards.
    pub fn rack_intra_feasible(
        &self,
        cluster: &Cluster,
        rack: RackId,
        demand: &FlowDemands,
    ) -> bool {
        use risa_topology::ResourceKind;
        let fits =
            |b: &BoxId, mbps: u64| self.box_trunks[b.0 as usize].max_link_free_mbps() >= mbps;
        let cpu_ok = cluster
            .boxes_in_rack(rack, ResourceKind::Cpu)
            .iter()
            .any(|b| fits(b, demand.cpu_ram_mbps));
        let sto_ok = cluster
            .boxes_in_rack(rack, ResourceKind::Storage)
            .iter()
            .any(|b| fits(b, demand.ram_sto_mbps));
        let ram_ok = cluster
            .boxes_in_rack(rack, ResourceKind::Ram)
            .iter()
            .any(|b| {
                let t = &self.box_trunks[b.0 as usize];
                t.max_link_free_mbps() >= demand.cpu_ram_mbps.max(demand.ram_sto_mbps)
                    && t.free_mbps() >= demand.ram_box_mbps()
            });
        cpu_ok && ram_ok && sto_ok
    }

    /// Total capacity of the intra-rack layer (all box uplink trunks).
    pub fn intra_capacity_mbps(&self) -> u64 {
        self.box_trunks.iter().map(Trunk::capacity_mbps).sum()
    }

    /// Bandwidth currently reserved on the intra-rack layer.
    pub fn intra_used_mbps(&self) -> u64 {
        self.box_trunks.iter().map(Trunk::used_mbps).sum()
    }

    /// Total capacity of the inter-rack layer (all rack uplink trunks).
    pub fn inter_capacity_mbps(&self) -> u64 {
        self.rack_trunks.iter().map(Trunk::capacity_mbps).sum()
    }

    /// Bandwidth currently reserved on the inter-rack layer.
    pub fn inter_used_mbps(&self) -> u64 {
        self.rack_trunks.iter().map(Trunk::used_mbps).sum()
    }

    /// Free bandwidth trapped behind down links across both layers —
    /// the network contribution to the stranded-capacity resilience
    /// metric.
    pub fn stranded_mbps(&self) -> u64 {
        self.box_trunks
            .iter()
            .chain(&self.rack_trunks)
            .map(Trunk::stranded_mbps)
            .sum()
    }

    /// Intra-rack layer utilization in `[0, 1]` (Figure 8 left panel).
    pub fn intra_utilization(&self) -> f64 {
        self.intra_used_mbps() as f64 / self.intra_capacity_mbps() as f64
    }

    /// Inter-rack layer utilization in `[0, 1]` (Figure 8 right panel).
    pub fn inter_utilization(&self) -> f64 {
        self.inter_used_mbps() as f64 / self.inter_capacity_mbps() as f64
    }

    /// Debug invariant: every link's free bandwidth within `[0, capacity]`
    /// (guaranteed by construction; kept for the property suite's belt and
    /// braces).
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, t) in self.box_trunks.iter().enumerate() {
            for l in 0..t.width() {
                if t.link_free_mbps(l) > t.link_capacity_mbps() {
                    return Err(format!("box trunk {i} link {l} over capacity"));
                }
            }
        }
        for (i, t) in self.rack_trunks.iter().enumerate() {
            for l in 0..t.width() {
                if t.link_free_mbps(l) > t.link_capacity_mbps() {
                    return Err(format!("rack trunk {i} link {l} over capacity"));
                }
            }
        }
        for (i, t) in self.box_trunks.iter().chain(&self.rack_trunks).enumerate() {
            let up_links = || (0..t.width()).filter(|&l| t.link_up(l));
            let total_up: u64 = up_links().map(|l| t.link_free_mbps(l)).sum();
            let max_up = up_links().map(|l| t.link_free_mbps(l)).max().unwrap_or(0);
            let total_all: u64 = (0..t.width()).map(|l| t.link_free_mbps(l)).sum();
            if t.free_mbps() != total_up
                || t.max_link_free_mbps() != max_up
                || t.used_mbps() != t.capacity_mbps() - total_all
            {
                return Err(format!("trunk {i}: stale headroom cache"));
            }
        }
        if self.rack_bw != Self::build_rack_bw(&self.rack_trunks) {
            return Err("rack bandwidth ordering stale".into());
        }
        Ok(())
    }
}

/// The network serializes as configuration plus trunk ledgers; the
/// rack-bandwidth ordering is derived state rebuilt on load.
impl Serialize for NetworkState {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("cfg".to_string(), self.cfg.to_value()),
            ("box_trunks".to_string(), self.box_trunks.to_value()),
            ("rack_trunks".to_string(), self.rack_trunks.to_value()),
        ])
    }
}

impl Deserialize for NetworkState {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let cfg = NetworkConfig::from_value(serde::value::field(v, "cfg")?)?;
        let box_trunks = Vec::<Trunk>::from_value(serde::value::field(v, "box_trunks")?)?;
        let rack_trunks = Vec::<Trunk>::from_value(serde::value::field(v, "rack_trunks")?)?;
        let rack_bw = Self::build_rack_bw(&rack_trunks);
        Ok(NetworkState {
            cfg,
            box_trunks,
            rack_trunks,
            rack_bw,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use risa_topology::TopologyConfig;

    fn setup() -> (Cluster, NetworkState) {
        let cluster = Cluster::new(TopologyConfig::paper());
        let net = NetworkState::new(NetworkConfig::paper(), &cluster);
        (cluster, net)
    }

    #[test]
    fn pristine_network_capacities() {
        let (_c, net) = setup();
        // 108 box trunks x 8 links x 200 Gb/s.
        assert_eq!(net.intra_capacity_mbps(), 108 * 8 * 200_000);
        // 18 rack trunks x 16 links x 200 Gb/s.
        assert_eq!(net.inter_capacity_mbps(), 18 * 16 * 200_000);
        assert_eq!(net.intra_used_mbps(), 0);
        assert_eq!(net.inter_utilization(), 0.0);
    }

    #[test]
    fn intra_rack_flow_touches_only_box_trunks() {
        let (c, mut net) = setup();
        let f = net
            .alloc_flow(&c, BoxId(0), BoxId(2), 5_000, LinkPolicy::FirstFit)
            .unwrap();
        assert!(!f.inter_rack);
        assert_eq!(f.hops.len(), 2);
        assert_eq!(net.intra_used_mbps(), 10_000);
        assert_eq!(net.inter_used_mbps(), 0);
        net.release_flow(&f).unwrap();
        assert_eq!(net.intra_used_mbps(), 0);
    }

    #[test]
    fn inter_rack_flow_crosses_four_trunks() {
        let (c, mut net) = setup();
        // Box 0 in rack 0, box 8 (RAM) in rack 1.
        let f = net
            .alloc_flow(&c, BoxId(0), BoxId(8), 5_000, LinkPolicy::FirstFit)
            .unwrap();
        assert!(f.inter_rack);
        assert_eq!(f.hops.len(), 4);
        assert_eq!(net.intra_used_mbps(), 10_000);
        assert_eq!(net.inter_used_mbps(), 10_000);
        net.release_flow(&f).unwrap();
        net.check_invariants().unwrap();
    }

    #[test]
    fn first_fit_packs_link_zero() {
        let (c, mut net) = setup();
        let f1 = net
            .alloc_flow(&c, BoxId(0), BoxId(2), 50_000, LinkPolicy::FirstFit)
            .unwrap();
        let f2 = net
            .alloc_flow(&c, BoxId(0), BoxId(2), 50_000, LinkPolicy::FirstFit)
            .unwrap();
        assert_eq!(f1.hops[0].link, 0);
        assert_eq!(f2.hops[0].link, 0, "first-fit keeps filling link 0");
        let _ = (f1, f2);
    }

    #[test]
    fn most_available_spreads_across_links() {
        let (c, mut net) = setup();
        let f1 = net
            .alloc_flow(&c, BoxId(0), BoxId(2), 50_000, LinkPolicy::MostAvailable)
            .unwrap();
        let f2 = net
            .alloc_flow(&c, BoxId(0), BoxId(2), 50_000, LinkPolicy::MostAvailable)
            .unwrap();
        assert_eq!(f1.hops[0].link, 0);
        assert_eq!(
            f2.hops[0].link, 1,
            "most-available moves to the emptier link"
        );
    }

    #[test]
    fn flow_failure_rolls_back_all_hops() {
        let (c, mut net) = setup();
        // Saturate box 2's trunk entirely (8 full-link flows).
        let fills: Vec<FlowPath> = (0..8)
            .map(|_| {
                net.alloc_flow(&c, BoxId(2), BoxId(4), 200_000, LinkPolicy::FirstFit)
                    .unwrap()
            })
            .collect();
        let before = net.intra_used_mbps();
        let err = net
            .alloc_flow(&c, BoxId(0), BoxId(2), 1_000, LinkPolicy::FirstFit)
            .unwrap_err();
        assert!(matches!(
            err,
            NetError::InsufficientBandwidth {
                trunk: TrunkId::BoxUplink(2),
                ..
            }
        ));
        assert_eq!(
            net.intra_used_mbps(),
            before,
            "failed flow must not leak bandwidth on box 0's trunk"
        );
        for f in &fills {
            net.release_flow(f).unwrap();
        }
        assert_eq!(net.intra_used_mbps(), 0);
    }

    #[test]
    fn vm_allocation_reserves_both_flows() {
        let (c, mut net) = setup();
        let d = FlowDemands {
            cpu_ram_mbps: 20_000,
            ram_sto_mbps: 2_000,
        };
        let a = net
            .alloc_vm(&c, BoxId(0), BoxId(2), BoxId(4), &d, LinkPolicy::FirstFit)
            .unwrap();
        assert!(!a.is_inter_rack());
        assert_eq!(a.total_mbps(), 22_000);
        // cpu-ram crosses 2 trunks, ram-sto crosses 2: 2*20k + 2*2k.
        assert_eq!(net.intra_used_mbps(), 44_000);
        net.release_vm(&a).unwrap();
        assert_eq!(net.intra_used_mbps(), 0);
    }

    #[test]
    fn vm_allocation_rolls_back_first_flow_when_second_fails() {
        let (c, mut net) = setup();
        // Saturate storage box 4's trunk.
        let fills: Vec<FlowPath> = (0..8)
            .map(|_| {
                net.alloc_flow(&c, BoxId(4), BoxId(5), 200_000, LinkPolicy::FirstFit)
                    .unwrap()
            })
            .collect();
        let d = FlowDemands {
            cpu_ram_mbps: 20_000,
            ram_sto_mbps: 2_000,
        };
        let before_box0 = net.box_uplink_free_mbps(BoxId(0));
        assert!(net
            .alloc_vm(&c, BoxId(0), BoxId(2), BoxId(4), &d, LinkPolicy::FirstFit)
            .is_err());
        assert_eq!(
            net.box_uplink_free_mbps(BoxId(0)),
            before_box0,
            "cpu-ram flow must be rolled back"
        );
        for f in &fills {
            net.release_flow(f).unwrap();
        }
    }

    #[test]
    fn rack_feasibility_precheck() {
        let (c, mut net) = setup();
        let d = FlowDemands {
            cpu_ram_mbps: 40_000,
            ram_sto_mbps: 8_000,
        };
        assert!(net.rack_intra_feasible(&c, RackId(0), &d));
        // Saturate both CPU box trunks in rack 0 (spreading the far ends
        // across both RAM boxes; each RAM trunk fills too, which is fine —
        // the feasibility check must fail on the CPU side regardless).
        let mut fills = vec![];
        for cpu_box in [BoxId(0), BoxId(1)] {
            for ram_box in [BoxId(2), BoxId(3)] {
                for _ in 0..4 {
                    fills.push(
                        net.alloc_flow(&c, cpu_box, ram_box, 200_000, LinkPolicy::FirstFit)
                            .unwrap(),
                    );
                }
            }
        }
        assert!(!net.rack_intra_feasible(&c, RackId(0), &d));
        assert!(net.rack_intra_feasible(&c, RackId(1), &d));
        for f in &fills {
            net.release_flow(f).unwrap();
        }
        assert!(net.rack_intra_feasible(&c, RackId(0), &d));
    }

    #[test]
    fn same_box_flow_is_free() {
        let (c, mut net) = setup();
        let f = net
            .alloc_flow(&c, BoxId(0), BoxId(0), 99_999, LinkPolicy::FirstFit)
            .unwrap();
        assert!(f.hops.is_empty());
        assert_eq!(net.intra_used_mbps(), 0);
    }

    #[test]
    fn link_faults_reorder_racks_and_strand_bandwidth() {
        let (c, mut net) = setup();
        net.check_invariants().unwrap();
        // Downing rack 0's entire uplink pushes it to the back of NALB's
        // neighbour order (all racks tie otherwise; ties go low-id first).
        let width = net.trunk(TrunkId::RackUplink(0)).width();
        for l in 0..width {
            net.fail_link(TrunkId::RackUplink(0), l).unwrap();
        }
        net.check_invariants().unwrap();
        let order: Vec<RackId> = net.racks_by_free_bw_desc().collect();
        assert_eq!(order[0], RackId(1), "rack 0 no longer leads the order");
        assert_eq!(*order.last().unwrap(), RackId(0));
        assert_eq!(net.rack_uplink_free_mbps(RackId(0)), 0);
        assert_eq!(
            net.stranded_mbps(),
            width as u64 * net.config().link_mbps,
            "downed links' free bandwidth is stranded, not used"
        );
        // Inter-rack flows from rack 0 now fail on its uplink trunk.
        let err = net
            .alloc_flow(&c, BoxId(0), BoxId(8), 5_000, LinkPolicy::FirstFit)
            .unwrap_err();
        assert!(matches!(
            err,
            NetError::InsufficientBandwidth {
                trunk: TrunkId::RackUplink(0),
                ..
            }
        ));
        for l in 0..width {
            net.restore_link(TrunkId::RackUplink(0), l).unwrap();
        }
        net.check_invariants().unwrap();
        assert_eq!(net.stranded_mbps(), 0);
        assert_eq!(net.racks_by_free_bw_desc().next(), Some(RackId(0)));
        // Double-fault and spurious repair surface as typed errors.
        net.fail_link(TrunkId::BoxUplink(3), 2).unwrap();
        assert!(matches!(
            net.fail_link(TrunkId::BoxUplink(3), 2).unwrap_err(),
            NetError::Trunk {
                trunk: TrunkId::BoxUplink(3),
                error: crate::trunk::TrunkError::LinkDown { link: 2 },
            }
        ));
        net.restore_link(TrunkId::BoxUplink(3), 2).unwrap();
        assert!(matches!(
            net.restore_link(TrunkId::BoxUplink(3), 2).unwrap_err(),
            NetError::Trunk {
                trunk: TrunkId::BoxUplink(3),
                error: crate::trunk::TrunkError::LinkNotDown { link: 2 },
            }
        ));
    }

    #[test]
    fn flows_granted_before_a_fault_release_through_it() {
        let (c, mut net) = setup();
        let f = net
            .alloc_flow(&c, BoxId(0), BoxId(2), 5_000, LinkPolicy::FirstFit)
            .unwrap();
        let hop = f.hops[0];
        net.fail_link(hop.trunk, hop.link).unwrap();
        net.release_flow(&f).unwrap();
        net.check_invariants().unwrap();
        assert_eq!(net.intra_used_mbps(), 0);
        // The freed bandwidth sits stranded behind the down link.
        assert_eq!(
            net.stranded_mbps(),
            net.config().link_mbps,
            "released grant returns to the downed link's ledger"
        );
        net.restore_link(hop.trunk, hop.link).unwrap();
        assert_eq!(net.stranded_mbps(), 0);
    }

    #[test]
    fn over_release_propagates_as_typed_error() {
        let (c, mut net) = setup();
        let f = net
            .alloc_flow(&c, BoxId(0), BoxId(2), 5_000, LinkPolicy::FirstFit)
            .unwrap();
        net.release_flow(&f).unwrap();
        let err = net.release_flow(&f).unwrap_err();
        assert!(matches!(
            err,
            NetError::Trunk {
                error: crate::trunk::TrunkError::OverRelease { .. },
                ..
            }
        ));
        net.check_invariants().unwrap();
    }

    #[test]
    fn trunk_serde_preserves_link_state() {
        let (c, mut net) = setup();
        net.fail_link(TrunkId::BoxUplink(5), 1).unwrap();
        let back = NetworkState::from_value(&net.to_value()).unwrap();
        back.check_invariants().unwrap();
        assert!(!back.trunk(TrunkId::BoxUplink(5)).link_up(1));
        assert_eq!(back.stranded_mbps(), net.stranded_mbps());
        let _ = c;
    }

    #[test]
    fn zero_demand_always_succeeds() {
        let (c, mut net) = setup();
        let f = net
            .alloc_flow(&c, BoxId(0), BoxId(2), 0, LinkPolicy::FirstFit)
            .unwrap();
        assert_eq!(f.hops.len(), 2);
        assert_eq!(net.intra_used_mbps(), 0);
        net.release_flow(&f).unwrap();
    }
}
