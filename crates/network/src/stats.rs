//! Network introspection: per-trunk load distribution and hot-spot
//! reporting. The paper's Figure 8 reports aggregate utilization; these
//! helpers expose the *distribution* behind it (how evenly RISA's
//! round-robin spreads load vs. NULB's first-fit pile-up).

use crate::state::NetworkState;
use crate::trunk::TrunkId;
use risa_topology::{BoxId, Cluster, RackId};
use serde::{Deserialize, Serialize};

/// Load snapshot of one trunk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrunkLoad {
    /// Which trunk.
    pub trunk: TrunkId,
    /// Reserved bandwidth, Mb/s.
    pub used_mbps: u64,
    /// Capacity, Mb/s.
    pub capacity_mbps: u64,
}

impl TrunkLoad {
    /// Utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.capacity_mbps == 0 {
            0.0
        } else {
            self.used_mbps as f64 / self.capacity_mbps as f64
        }
    }
}

/// Distribution summary of a set of trunk loads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadDistribution {
    /// Number of trunks.
    pub count: usize,
    /// Mean utilization.
    pub mean: f64,
    /// Maximum utilization.
    pub max: f64,
    /// Coefficient of variation (σ/µ; 0 = perfectly balanced).
    pub cv: f64,
}

impl LoadDistribution {
    fn of(loads: &[TrunkLoad]) -> Self {
        let n = loads.len().max(1) as f64;
        let mean = loads.iter().map(TrunkLoad::utilization).sum::<f64>() / n;
        let max = loads
            .iter()
            .map(TrunkLoad::utilization)
            .fold(0.0f64, f64::max);
        let var = loads
            .iter()
            .map(|l| {
                let d = l.utilization() - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
        LoadDistribution {
            count: loads.len(),
            mean,
            max,
            cv,
        }
    }
}

/// Snapshot every box-uplink trunk's load.
pub fn box_trunk_loads(net: &NetworkState, cluster: &Cluster) -> Vec<TrunkLoad> {
    (0..cluster.num_boxes() as u32)
        .map(|b| {
            let t = net.trunk(TrunkId::BoxUplink(b));
            TrunkLoad {
                trunk: TrunkId::BoxUplink(b),
                used_mbps: t.used_mbps(),
                capacity_mbps: t.capacity_mbps(),
            }
        })
        .collect()
}

/// Snapshot every rack-uplink trunk's load.
pub fn rack_trunk_loads(net: &NetworkState, cluster: &Cluster) -> Vec<TrunkLoad> {
    (0..cluster.num_racks())
        .map(|r| {
            let t = net.trunk(TrunkId::RackUplink(r));
            TrunkLoad {
                trunk: TrunkId::RackUplink(r),
                used_mbps: t.used_mbps(),
                capacity_mbps: t.capacity_mbps(),
            }
        })
        .collect()
}

/// Distribution of box-uplink utilization (the load-balance quality
/// metric RISA's round-robin targets).
pub fn box_load_distribution(net: &NetworkState, cluster: &Cluster) -> LoadDistribution {
    LoadDistribution::of(&box_trunk_loads(net, cluster))
}

/// Distribution of rack-uplink utilization.
pub fn rack_load_distribution(net: &NetworkState, cluster: &Cluster) -> LoadDistribution {
    LoadDistribution::of(&rack_trunk_loads(net, cluster))
}

/// The `n` most loaded trunks (box and rack), descending by utilization.
pub fn hotspots(net: &NetworkState, cluster: &Cluster, n: usize) -> Vec<TrunkLoad> {
    let mut all = box_trunk_loads(net, cluster);
    all.extend(rack_trunk_loads(net, cluster));
    all.sort_by(|a, b| b.utilization().total_cmp(&a.utilization()));
    all.truncate(n);
    all
}

/// Convenience: which rack a hot trunk belongs to.
pub fn rack_of_trunk(cluster: &Cluster, trunk: TrunkId) -> RackId {
    match trunk {
        TrunkId::BoxUplink(b) => cluster.rack_of(BoxId(b)),
        TrunkId::RackUplink(r) => RackId(r),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::state::LinkPolicy;
    use risa_topology::TopologyConfig;

    fn setup() -> (Cluster, NetworkState) {
        let c = Cluster::new(TopologyConfig::paper());
        let n = NetworkState::new(NetworkConfig::paper(), &c);
        (c, n)
    }

    #[test]
    fn pristine_network_is_perfectly_balanced() {
        let (c, n) = setup();
        let d = box_load_distribution(&n, &c);
        assert_eq!(d.count, 108);
        assert_eq!(d.mean, 0.0);
        assert_eq!(d.max, 0.0);
        assert_eq!(d.cv, 0.0);
    }

    #[test]
    fn skewed_load_shows_in_cv_and_hotspots() {
        let (c, mut n) = setup();
        // Pile traffic on box 0's trunk, spreading the far ends so box 0
        // is strictly the hottest (each flow loads both endpoint trunks).
        for dst in [BoxId(2), BoxId(3), BoxId(2), BoxId(3)] {
            n.alloc_flow(&c, BoxId(0), dst, 150_000, LinkPolicy::FirstFit)
                .unwrap();
        }
        let d = box_load_distribution(&n, &c);
        assert!(d.cv > 3.0, "one hot trunk of 108 → large CV, got {}", d.cv);
        let hot = hotspots(&n, &c, 3);
        assert_eq!(hot[0].trunk, TrunkId::BoxUplink(0));
        assert!(hot[0].utilization() > hot[1].utilization());
        assert_eq!(rack_of_trunk(&c, hot[0].trunk), RackId(0));
    }

    #[test]
    fn rack_loads_follow_inter_rack_flows() {
        let (c, mut n) = setup();
        n.alloc_flow(&c, BoxId(0), BoxId(8), 100_000, LinkPolicy::FirstFit)
            .unwrap();
        let loads = rack_trunk_loads(&n, &c);
        assert_eq!(loads[0].used_mbps, 100_000);
        assert_eq!(loads[1].used_mbps, 100_000);
        assert!(loads[2..].iter().all(|l| l.used_mbps == 0));
        let d = rack_load_distribution(&n, &c);
        assert!(d.mean > 0.0);
        assert_eq!(rack_of_trunk(&c, loads[1].trunk), RackId(1));
    }

    #[test]
    fn trunk_load_utilization_math() {
        let l = TrunkLoad {
            trunk: TrunkId::BoxUplink(0),
            used_mbps: 400_000,
            capacity_mbps: 1_600_000,
        };
        assert_eq!(l.utilization(), 0.25);
        let z = TrunkLoad {
            trunk: TrunkId::BoxUplink(0),
            used_mbps: 0,
            capacity_mbps: 0,
        };
        assert_eq!(z.utilization(), 0.0);
    }
}
