//! # risa-network — the two-tier optical network substrate
//!
//! The paper's DDC (Figures 2 and 3) connects every box to its rack's
//! optical circuit switch, and every rack switch to a cluster-level
//! inter-rack switch. Each physical link is a Luxtera-style SiP module with
//! 8 × 25 Gb/s channels = **200 Gb/s per link** (§3.1); boxes and racks
//! attach through *trunks* of several such links.
//!
//! A VM's placement produces two flows (Table 2):
//! * CPU ↔ RAM at 5 Gb/s per unit,
//! * RAM ↔ storage at 1 Gb/s per unit.
//!
//! An intra-rack flow crosses the two box uplink trunks; an inter-rack flow
//! additionally crosses both rack uplink trunks. Individual links inside a
//! trunk are allocated per flow, and the *link selection policy* is exactly
//! what distinguishes the baselines: NULB takes the **first** link that
//! fits, NALB the link with the **most available bandwidth** (§4.1).
//!
//! Bandwidth is tracked as integer **Mb/s** so the ledger is exact.
//!
//! ```
//! use risa_network::{NetworkConfig, NetworkState, LinkPolicy, FlowDemands};
//! use risa_topology::{Cluster, TopologyConfig, UnitDemand, BoxId};
//!
//! let cluster = Cluster::new(TopologyConfig::paper());
//! let mut net = NetworkState::new(NetworkConfig::paper(), &cluster);
//!
//! // The paper's typical VM: 2 CPU units, 4 RAM units, 2 storage units.
//! let demand = FlowDemands::for_vm(net.config(), &UnitDemand::new(2, 4, 2));
//! assert_eq!(demand.cpu_ram_mbps, 5_000 * 4);  // 5 Gb/s x max(2,4) units
//! assert_eq!(demand.ram_sto_mbps, 1_000 * 4);  // 1 Gb/s x max(4,2) units
//!
//! // Wire the VM between boxes 0 (CPU), 2 (RAM) and 4 (storage) in rack 0.
//! let alloc = net
//!     .alloc_vm(&cluster, BoxId(0), BoxId(2), BoxId(4), &demand, LinkPolicy::FirstFit)
//!     .unwrap();
//! assert!(!alloc.is_inter_rack());
//! net.release_vm(&alloc);
//! assert_eq!(net.intra_used_mbps(), 0);
//! ```

#![warn(missing_docs)]

mod config;
mod demand;
mod state;
pub mod stats;
mod trunk;

pub use config::NetworkConfig;
pub use demand::FlowDemands;
pub use state::{FlowPath, HopGrant, LinkPolicy, NetError, NetworkState, VmNetAllocation};
pub use trunk::{Trunk, TrunkId};
