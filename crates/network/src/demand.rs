//! Per-VM bandwidth demands (Table 2 of the paper).

use crate::config::NetworkConfig;
use risa_topology::{ResourceKind, UnitDemand};
use serde::{Deserialize, Serialize};

/// The two flows a VM needs once placed: CPU↔RAM and RAM↔storage.
///
/// Table 2 gives per-unit rates. The paper does not spell out which side's
/// unit count scales a flow; we charge the **max** of the two endpoints'
/// unit counts, which upper-bounds either reading and keeps the demand
/// monotone in every component (property-tested below).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowDemands {
    /// CPU↔RAM flow, Mb/s.
    pub cpu_ram_mbps: u64,
    /// RAM↔storage flow, Mb/s.
    pub ram_sto_mbps: u64,
}

impl FlowDemands {
    /// Demands for a VM with the given unit-granular resource demand.
    pub fn for_vm(cfg: &NetworkConfig, demand: &UnitDemand) -> Self {
        let cpu = demand.get(ResourceKind::Cpu) as u64;
        let ram = demand.get(ResourceKind::Ram) as u64;
        let sto = demand.get(ResourceKind::Storage) as u64;
        FlowDemands {
            cpu_ram_mbps: cfg.cpu_ram_mbps_per_unit * cpu.max(ram),
            ram_sto_mbps: cfg.ram_sto_mbps_per_unit * ram.max(sto),
        }
    }

    /// Combined demand crossing the RAM box's uplink (both flows terminate
    /// at the RAM box).
    pub fn ram_box_mbps(&self) -> u64 {
        self.cpu_ram_mbps + self.ram_sto_mbps
    }

    /// Total bandwidth of both flows.
    pub fn total_mbps(&self) -> u64 {
        self.cpu_ram_mbps + self.ram_sto_mbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demands(cpu: u32, ram: u32, sto: u32) -> FlowDemands {
        FlowDemands::for_vm(&NetworkConfig::paper(), &UnitDemand::new(cpu, ram, sto))
    }

    /// Table 2 rates at unit granularity.
    #[test]
    fn per_unit_rates() {
        let d = demands(1, 1, 1);
        assert_eq!(d.cpu_ram_mbps, 5_000);
        assert_eq!(d.ram_sto_mbps, 1_000);
        assert_eq!(d.total_mbps(), 6_000);
    }

    /// The paper's largest synthetic VM: 32 cores (8u), 32 GB (8u), 128 GB (2u).
    #[test]
    fn max_synthetic_vm() {
        let d = demands(8, 8, 2);
        assert_eq!(d.cpu_ram_mbps, 40_000); // 5 Gb/s x 8
        assert_eq!(d.ram_sto_mbps, 8_000); // 1 Gb/s x 8
                                           // Both flows fit one 200 Gb/s link with room to spare.
        assert!(d.ram_box_mbps() < 200_000);
    }

    #[test]
    fn max_of_endpoints_scales_flows() {
        // RAM-heavy VM: the CPU-RAM flow is driven by the RAM side.
        assert_eq!(demands(1, 8, 1).cpu_ram_mbps, 40_000);
        // Storage-heavy: RAM-STO driven by the storage side.
        assert_eq!(demands(1, 1, 4).ram_sto_mbps, 4_000);
    }

    #[test]
    fn monotone_in_every_component() {
        let base = demands(2, 2, 2);
        for (c, r, s) in [(3, 2, 2), (2, 3, 2), (2, 2, 3)] {
            let bigger = demands(c, r, s);
            assert!(bigger.cpu_ram_mbps >= base.cpu_ram_mbps);
            assert!(bigger.ram_sto_mbps >= base.ram_sto_mbps);
        }
    }

    #[test]
    fn zero_demand_zero_flows() {
        let d = demands(0, 0, 0);
        assert_eq!(d.total_mbps(), 0);
    }
}
