//! Trunks: bundles of parallel 200 Gb/s links with per-link accounting.

use serde::{Deserialize, Serialize};

/// Identifies one trunk in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TrunkId {
    /// The trunk between box `box_idx` and its rack switch.
    BoxUplink(u32),
    /// The trunk between rack `rack_idx`'s switch and the inter-rack switch.
    RackUplink(u16),
}

impl TrunkId {
    /// True for rack↔inter-rack trunks (the "inter-rack network" of Fig 8).
    pub fn is_inter_rack(&self) -> bool {
        matches!(self, TrunkId::RackUplink(_))
    }
}

/// One trunk: `width` independent links, each with its own free-bandwidth
/// counter in Mb/s, plus incrementally-maintained headroom aggregates
/// (total free, max link free) so schedulers read summaries in O(1)
/// instead of re-summing links on every probe.
#[derive(Debug, Clone)]
pub struct Trunk {
    link_mbps: u64,
    free: Vec<u64>,
    /// Cached Σ free (kept coherent by `take`/`give`).
    free_total: u64,
    /// Cached max over `free` (kept coherent by `take`/`give`).
    max_free: u64,
}

impl Trunk {
    /// A pristine trunk of `width` links of `link_mbps` each.
    pub fn new(width: u16, link_mbps: u64) -> Self {
        Trunk {
            link_mbps,
            free: vec![link_mbps; width as usize],
            free_total: link_mbps * width as u64,
            max_free: if width == 0 { 0 } else { link_mbps },
        }
    }

    /// Number of links.
    pub fn width(&self) -> usize {
        self.free.len()
    }

    /// Capacity of each individual link.
    pub fn link_capacity_mbps(&self) -> u64 {
        self.link_mbps
    }

    /// Total trunk capacity.
    pub fn capacity_mbps(&self) -> u64 {
        self.link_mbps * self.free.len() as u64
    }

    /// Total free bandwidth across all links. O(1) (incremental cache).
    pub fn free_mbps(&self) -> u64 {
        self.free_total
    }

    /// Total allocated bandwidth.
    pub fn used_mbps(&self) -> u64 {
        self.capacity_mbps() - self.free_mbps()
    }

    /// Free bandwidth of link `i`.
    pub fn link_free_mbps(&self, i: usize) -> u64 {
        self.free[i]
    }

    /// Largest free bandwidth on any single link — what NALB sorts by, and
    /// what feasibility pre-checks compare flow demands against. O(1)
    /// (incremental cache).
    pub fn max_link_free_mbps(&self) -> u64 {
        self.max_free
    }

    /// Index of the **first** link with at least `mbps` free (NULB/RISA
    /// link policy), or `None`.
    pub fn first_fit(&self, mbps: u64) -> Option<usize> {
        self.free.iter().position(|&f| f >= mbps)
    }

    /// Index of the link with the **most** free bandwidth, provided it has
    /// at least `mbps` free (NALB link policy), or `None`. Ties break to
    /// the lowest index for determinism.
    pub fn most_available(&self, mbps: u64) -> Option<usize> {
        let (idx, &best) = self
            .free
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))?;
        (best >= mbps).then_some(idx)
    }

    /// Reserve `mbps` on link `i`; `false` when the link lacks capacity
    /// (nothing is taken in that case).
    #[must_use]
    pub fn take(&mut self, i: usize, mbps: u64) -> bool {
        if self.free[i] < mbps {
            return false;
        }
        let was_max = self.free[i] == self.max_free;
        self.free[i] -= mbps;
        self.free_total -= mbps;
        if was_max && mbps > 0 {
            // The previous maximum shrank; rescan the (small, fixed-width)
            // link vector once. Reads stay O(1).
            self.max_free = self.free.iter().copied().max().unwrap_or(0);
        }
        true
    }

    /// Return `mbps` to link `i`. Panics (debug) on over-release — the
    /// release path only ever replays recorded grants.
    pub fn give(&mut self, i: usize, mbps: u64) {
        self.free[i] += mbps;
        self.free_total += mbps;
        self.max_free = self.max_free.max(self.free[i]);
        debug_assert!(
            self.free[i] <= self.link_mbps,
            "link over-released: {} > {}",
            self.free[i],
            self.link_mbps
        );
    }
}

/// Trunks serialize as link capacity plus the per-link free vector; the
/// headroom caches are rebuilt on load.
impl Serialize for Trunk {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("link_mbps".to_string(), self.link_mbps.to_value()),
            ("free".to_string(), self.free.to_value()),
        ])
    }
}

impl Deserialize for Trunk {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let link_mbps = u64::from_value(serde::value::field(v, "link_mbps")?)?;
        let free = Vec::<u64>::from_value(serde::value::field(v, "free")?)?;
        if let Some((i, &f)) = free.iter().enumerate().find(|&(_, &f)| f > link_mbps) {
            return Err(serde::Error::new(format!(
                "link {i} claims {f} Mb/s free of a {link_mbps} Mb/s link"
            )));
        }
        Ok(Trunk {
            link_mbps,
            free_total: free.iter().sum(),
            max_free: free.iter().copied().max().unwrap_or(0),
            free,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pristine_trunk() {
        let t = Trunk::new(2, 200_000);
        assert_eq!(t.width(), 2);
        assert_eq!(t.capacity_mbps(), 400_000);
        assert_eq!(t.free_mbps(), 400_000);
        assert_eq!(t.used_mbps(), 0);
        assert_eq!(t.max_link_free_mbps(), 200_000);
    }

    #[test]
    fn first_fit_scans_in_order() {
        let mut t = Trunk::new(3, 100);
        assert!(t.take(0, 95));
        // link0 has 5 free; demand 10 skips to link1.
        assert_eq!(t.first_fit(10), Some(1));
        assert_eq!(t.first_fit(5), Some(0));
        assert_eq!(t.first_fit(101), None);
    }

    #[test]
    fn most_available_prefers_emptiest_link() {
        let mut t = Trunk::new(3, 100);
        assert!(t.take(0, 10)); // 90 free
        assert!(t.take(1, 50)); // 50 free
        assert_eq!(t.most_available(1), Some(2)); // 100 free
        assert!(t.take(2, 60)); // 40 free
        assert_eq!(t.most_available(1), Some(0));
        assert_eq!(t.most_available(95), None);
    }

    #[test]
    fn most_available_ties_break_low_index() {
        let t = Trunk::new(4, 100);
        assert_eq!(t.most_available(1), Some(0));
    }

    #[test]
    fn take_give_roundtrip() {
        let mut t = Trunk::new(2, 100);
        assert!(t.take(1, 60));
        assert_eq!(t.link_free_mbps(1), 40);
        assert_eq!(t.used_mbps(), 60);
        t.give(1, 60);
        assert_eq!(t.free_mbps(), 200);
    }

    #[test]
    fn take_fails_without_capacity() {
        let mut t = Trunk::new(1, 100);
        assert!(t.take(0, 100));
        assert!(!t.take(0, 1));
    }

    #[test]
    fn trunk_id_classification() {
        assert!(TrunkId::RackUplink(0).is_inter_rack());
        assert!(!TrunkId::BoxUplink(0).is_inter_rack());
    }
}
