//! Trunks: bundles of parallel 200 Gb/s links with per-link accounting.

use serde::{Deserialize, Serialize};

/// Identifies one trunk in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TrunkId {
    /// The trunk between box `box_idx` and its rack switch.
    BoxUplink(u32),
    /// The trunk between rack `rack_idx`'s switch and the inter-rack switch.
    RackUplink(u16),
}

impl TrunkId {
    /// True for rack↔inter-rack trunks (the "inter-rack network" of Fig 8).
    pub fn is_inter_rack(&self) -> bool {
        matches!(self, TrunkId::RackUplink(_))
    }
}

/// Why a trunk-level mutation was refused. These are *loud* typed errors:
/// the release path used to saturate silently (debug-only assert), which
/// failure evacuation makes reachable in release builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrunkError {
    /// Returning `freed_mbps` to `link` would exceed its capacity — the
    /// caller is replaying a grant that was never taken (or taken twice).
    OverRelease {
        /// The link being over-released.
        link: usize,
        /// The release that did not fit.
        freed_mbps: u64,
        /// The link's current free bandwidth (unchanged by the failure).
        free_mbps: u64,
        /// The link's capacity.
        link_capacity_mbps: u64,
    },
    /// The link is already down (double fault).
    LinkDown {
        /// The offending link.
        link: usize,
    },
    /// The link is already up (spurious repair).
    LinkNotDown {
        /// The offending link.
        link: usize,
    },
    /// The link index exceeds the trunk's width.
    NoSuchLink {
        /// The offending link.
        link: usize,
    },
}

impl std::fmt::Display for TrunkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrunkError::OverRelease {
                link,
                freed_mbps,
                free_mbps,
                link_capacity_mbps,
            } => write!(
                f,
                "link {link} over-released: {free_mbps} + {freed_mbps} > {link_capacity_mbps} Mb/s"
            ),
            TrunkError::LinkDown { link } => write!(f, "link {link} is already down"),
            TrunkError::LinkNotDown { link } => write!(f, "link {link} is not down"),
            TrunkError::NoSuchLink { link } => write!(f, "link {link} does not exist"),
        }
    }
}

impl std::error::Error for TrunkError {}

/// One trunk: `width` independent links, each with its own free-bandwidth
/// counter in Mb/s and an up/down flag, plus incrementally-maintained
/// headroom aggregates (schedulable free, reserved total, max link free)
/// so schedulers read summaries in O(1) instead of re-summing links on
/// every probe.
///
/// A **down** link (transceiver loss, [`Trunk::fail_link`]) keeps its
/// free-bandwidth ledger — flows granted before the fault stay charged and
/// may still release — but contributes nothing to the schedulable
/// aggregates and is skipped by [`Trunk::first_fit`] /
/// [`Trunk::most_available`], so no new flow lands on it. Its trapped free
/// bandwidth is reported as *stranded* until [`Trunk::restore_link`].
#[derive(Debug, Clone)]
pub struct Trunk {
    link_mbps: u64,
    free: Vec<u64>,
    /// Per-link up/down flags (`false` = down, excluded from scheduling).
    up: Vec<bool>,
    /// Cached Σ free over **up** links (kept coherent by every mutation).
    free_total: u64,
    /// Cached Σ free over **all** links — the flow-reservation ledger,
    /// unaffected by link state.
    free_all: u64,
    /// Cached max over **up** links' free (kept coherent likewise).
    max_free: u64,
}

impl Trunk {
    /// A pristine trunk of `width` links of `link_mbps` each.
    pub fn new(width: u16, link_mbps: u64) -> Self {
        Trunk {
            link_mbps,
            free: vec![link_mbps; width as usize],
            up: vec![true; width as usize],
            free_total: link_mbps * width as u64,
            free_all: link_mbps * width as u64,
            max_free: if width == 0 { 0 } else { link_mbps },
        }
    }

    /// Number of links.
    pub fn width(&self) -> usize {
        self.free.len()
    }

    /// Capacity of each individual link.
    pub fn link_capacity_mbps(&self) -> u64 {
        self.link_mbps
    }

    /// Total trunk capacity.
    pub fn capacity_mbps(&self) -> u64 {
        self.link_mbps * self.free.len() as u64
    }

    /// Schedulable free bandwidth: Σ free over **up** links. O(1)
    /// (incremental cache). Down links' trapped headroom is excluded —
    /// see [`Trunk::stranded_mbps`].
    pub fn free_mbps(&self) -> u64 {
        self.free_total
    }

    /// Bandwidth reserved by flows, regardless of link state. A down
    /// link's outstanding grants stay counted until released.
    pub fn used_mbps(&self) -> u64 {
        self.capacity_mbps() - self.free_all
    }

    /// Free bandwidth trapped behind down links — capacity that is
    /// neither reserved nor schedulable. O(1).
    pub fn stranded_mbps(&self) -> u64 {
        self.free_all - self.free_total
    }

    /// Free bandwidth of link `i` (the ledger value, kept even while the
    /// link is down).
    pub fn link_free_mbps(&self, i: usize) -> u64 {
        self.free[i]
    }

    /// Whether link `i` is up.
    pub fn link_up(&self, i: usize) -> bool {
        self.up[i]
    }

    /// Number of up links.
    pub fn up_width(&self) -> usize {
        self.up.iter().filter(|&&u| u).count()
    }

    /// Largest free bandwidth on any single **up** link — what NALB sorts
    /// by, and what feasibility pre-checks compare flow demands against.
    /// O(1) (incremental cache).
    pub fn max_link_free_mbps(&self) -> u64 {
        self.max_free
    }

    /// Index of the **first** up link with at least `mbps` free
    /// (NULB/RISA link policy), or `None`.
    pub fn first_fit(&self, mbps: u64) -> Option<usize> {
        (0..self.free.len()).find(|&i| self.up[i] && self.free[i] >= mbps)
    }

    /// Index of the **up** link with the most free bandwidth, provided it
    /// has at least `mbps` free (NALB link policy), or `None`. Ties break
    /// to the lowest index for determinism.
    pub fn most_available(&self, mbps: u64) -> Option<usize> {
        let (idx, &best) = self
            .free
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.up[i])
            .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))?;
        (best >= mbps).then_some(idx)
    }

    /// Reserve `mbps` on link `i`; `false` when the link is down or lacks
    /// capacity (nothing is taken in either case).
    #[must_use]
    pub fn take(&mut self, i: usize, mbps: u64) -> bool {
        if !self.up[i] || self.free[i] < mbps {
            return false;
        }
        let was_max = self.free[i] == self.max_free;
        self.free[i] -= mbps;
        self.free_total -= mbps;
        self.free_all -= mbps;
        if was_max && mbps > 0 {
            // The previous maximum shrank; rescan the (small, fixed-width)
            // link vector once. Reads stay O(1).
            self.max_free = self.up_max();
        }
        true
    }

    /// Return `mbps` to link `i`. Over-release is a loud typed error —
    /// the state is untouched and the caller learns exactly which grant
    /// replay went wrong. Releasing onto a **down** link is legal (the
    /// flow predates the fault): the ledger updates, the schedulable
    /// aggregates do not.
    pub fn give(&mut self, i: usize, mbps: u64) -> Result<(), TrunkError> {
        let free = *self.free.get(i).ok_or(TrunkError::NoSuchLink { link: i })?;
        if free + mbps > self.link_mbps {
            return Err(TrunkError::OverRelease {
                link: i,
                freed_mbps: mbps,
                free_mbps: free,
                link_capacity_mbps: self.link_mbps,
            });
        }
        self.free[i] += mbps;
        self.free_all += mbps;
        if self.up[i] {
            self.free_total += mbps;
            self.max_free = self.max_free.max(self.free[i]);
        }
        Ok(())
    }

    /// Take link `i` down (transceiver loss). Its free bandwidth leaves
    /// the schedulable aggregates (becoming stranded) and the link stops
    /// matching [`Trunk::first_fit`] / [`Trunk::most_available`];
    /// outstanding grants stay charged. O(width) when the link held the
    /// max.
    pub fn fail_link(&mut self, i: usize) -> Result<(), TrunkError> {
        match self.up.get(i) {
            None => return Err(TrunkError::NoSuchLink { link: i }),
            Some(false) => return Err(TrunkError::LinkDown { link: i }),
            Some(true) => {}
        }
        self.up[i] = false;
        self.free_total -= self.free[i];
        if self.free[i] == self.max_free {
            self.max_free = self.up_max();
        }
        Ok(())
    }

    /// Bring link `i` back up, re-entering its (ledger-preserved) free
    /// bandwidth into the schedulable aggregates. O(1).
    pub fn restore_link(&mut self, i: usize) -> Result<(), TrunkError> {
        match self.up.get(i) {
            None => return Err(TrunkError::NoSuchLink { link: i }),
            Some(true) => return Err(TrunkError::LinkNotDown { link: i }),
            Some(false) => {}
        }
        self.up[i] = true;
        self.free_total += self.free[i];
        self.max_free = self.max_free.max(self.free[i]);
        Ok(())
    }

    fn up_max(&self) -> u64 {
        self.free
            .iter()
            .zip(&self.up)
            .filter_map(|(&f, &u)| u.then_some(f))
            .max()
            .unwrap_or(0)
    }
}

/// Trunks serialize as link capacity, the per-link free vector, and the
/// per-link up flags; the headroom caches are rebuilt on load. Snapshots
/// written before link faults existed omit `up` and load as all-up.
impl Serialize for Trunk {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("link_mbps".to_string(), self.link_mbps.to_value()),
            ("free".to_string(), self.free.to_value()),
            ("up".to_string(), self.up.to_value()),
        ])
    }
}

impl Deserialize for Trunk {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let link_mbps = u64::from_value(serde::value::field(v, "link_mbps")?)?;
        let free = Vec::<u64>::from_value(serde::value::field(v, "free")?)?;
        if let Some((i, &f)) = free.iter().enumerate().find(|&(_, &f)| f > link_mbps) {
            return Err(serde::Error::new(format!(
                "link {i} claims {f} Mb/s free of a {link_mbps} Mb/s link"
            )));
        }
        let up = match serde::value::field(v, "up") {
            Ok(val) => Vec::<bool>::from_value(val)?,
            Err(_) => vec![true; free.len()],
        };
        if up.len() != free.len() {
            return Err(serde::Error::new(format!(
                "up mask covers {} links of {}",
                up.len(),
                free.len()
            )));
        }
        Ok(Trunk {
            link_mbps,
            free_total: free
                .iter()
                .zip(&up)
                .filter_map(|(&f, &u)| u.then_some(f))
                .sum(),
            free_all: free.iter().sum(),
            max_free: free
                .iter()
                .zip(&up)
                .filter_map(|(&f, &u)| u.then_some(f))
                .max()
                .unwrap_or(0),
            free,
            up,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pristine_trunk() {
        let t = Trunk::new(2, 200_000);
        assert_eq!(t.width(), 2);
        assert_eq!(t.capacity_mbps(), 400_000);
        assert_eq!(t.free_mbps(), 400_000);
        assert_eq!(t.used_mbps(), 0);
        assert_eq!(t.max_link_free_mbps(), 200_000);
    }

    #[test]
    fn first_fit_scans_in_order() {
        let mut t = Trunk::new(3, 100);
        assert!(t.take(0, 95));
        // link0 has 5 free; demand 10 skips to link1.
        assert_eq!(t.first_fit(10), Some(1));
        assert_eq!(t.first_fit(5), Some(0));
        assert_eq!(t.first_fit(101), None);
    }

    #[test]
    fn most_available_prefers_emptiest_link() {
        let mut t = Trunk::new(3, 100);
        assert!(t.take(0, 10)); // 90 free
        assert!(t.take(1, 50)); // 50 free
        assert_eq!(t.most_available(1), Some(2)); // 100 free
        assert!(t.take(2, 60)); // 40 free
        assert_eq!(t.most_available(1), Some(0));
        assert_eq!(t.most_available(95), None);
    }

    #[test]
    fn most_available_ties_break_low_index() {
        let t = Trunk::new(4, 100);
        assert_eq!(t.most_available(1), Some(0));
    }

    #[test]
    fn take_give_roundtrip() {
        let mut t = Trunk::new(2, 100);
        assert!(t.take(1, 60));
        assert_eq!(t.link_free_mbps(1), 40);
        assert_eq!(t.used_mbps(), 60);
        t.give(1, 60).unwrap();
        assert_eq!(t.free_mbps(), 200);
    }

    #[test]
    fn take_fails_without_capacity() {
        let mut t = Trunk::new(1, 100);
        assert!(t.take(0, 100));
        assert!(!t.take(0, 1));
    }

    #[test]
    fn over_release_is_a_loud_error_and_leaves_state_untouched() {
        let mut t = Trunk::new(2, 100);
        assert!(t.take(0, 30));
        let err = t.give(0, 31).unwrap_err();
        assert_eq!(
            err,
            TrunkError::OverRelease {
                link: 0,
                freed_mbps: 31,
                free_mbps: 70,
                link_capacity_mbps: 100,
            }
        );
        assert_eq!(t.link_free_mbps(0), 70, "failed give must not mutate");
        assert_eq!(t.free_mbps(), 170);
        assert_eq!(
            t.give(9, 1).unwrap_err(),
            TrunkError::NoSuchLink { link: 9 }
        );
        t.give(0, 30).unwrap();
        assert_eq!(t.free_mbps(), 200);
    }

    #[test]
    fn down_link_leaves_aggregates_and_scheduling() {
        let mut t = Trunk::new(3, 100);
        assert!(t.take(0, 40)); // 60 free
        t.fail_link(0).unwrap();
        assert_eq!(t.free_mbps(), 200, "link 0's 60 free is stranded");
        assert_eq!(t.stranded_mbps(), 60);
        assert_eq!(t.used_mbps(), 40, "grants stay charged while down");
        assert_eq!(t.up_width(), 2);
        assert!(!t.link_up(0));
        assert_eq!(t.first_fit(10), Some(1), "first-fit skips the down link");
        assert_eq!(t.most_available(1), Some(1));
        assert!(!t.take(0, 1), "no new flow lands on a down link");
        // Pre-fault flow may still depart.
        t.give(0, 40).unwrap();
        assert_eq!(t.stranded_mbps(), 100);
        assert_eq!(t.used_mbps(), 0);
        assert_eq!(
            t.fail_link(0).unwrap_err(),
            TrunkError::LinkDown { link: 0 }
        );
        t.restore_link(0).unwrap();
        assert_eq!(t.free_mbps(), 300);
        assert_eq!(t.stranded_mbps(), 0);
        assert_eq!(t.max_link_free_mbps(), 100);
        assert_eq!(
            t.restore_link(0).unwrap_err(),
            TrunkError::LinkNotDown { link: 0 }
        );
        assert_eq!(
            t.fail_link(7).unwrap_err(),
            TrunkError::NoSuchLink { link: 7 }
        );
    }

    #[test]
    fn max_free_tracks_link_state() {
        let mut t = Trunk::new(2, 100);
        assert!(t.take(1, 70)); // link 1: 30 free
        assert_eq!(t.max_link_free_mbps(), 100);
        t.fail_link(0).unwrap();
        assert_eq!(t.max_link_free_mbps(), 30, "max recomputed over up links");
        t.restore_link(0).unwrap();
        assert_eq!(t.max_link_free_mbps(), 100);
    }

    #[test]
    fn trunk_id_classification() {
        assert!(TrunkId::RackUplink(0).is_inter_rack());
        assert!(!TrunkId::BoxUplink(0).is_inter_rack());
    }
}
