//! Network configuration: link rates, trunk widths, per-unit flow demands.

use serde::{Deserialize, Serialize};

/// Static description of the optical network (§3.1, Table 2 and the switch
/// port counts from §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Capacity of one SiP link in Mb/s (paper: 8 × 25 Gb/s = 200 000 Mb/s).
    pub link_mbps: u64,
    /// Parallel links between a box and its rack switch.
    ///
    /// Figure 3 of the paper draws one SiP mid-board optical module per
    /// brick, so a box's uplink trunk is bricks-per-box = 8 links
    /// (8 × 200 Gb/s = 1.6 Tb/s). This width admits even a fully packed
    /// box's flows, matching the paper's drop-free evaluations
    /// (see EXPERIMENTS.md "calibration").
    pub box_uplink_width: u16,
    /// Parallel links between a rack switch and the inter-rack switch.
    pub rack_uplink_width: u16,
    /// CPU↔RAM bandwidth per unit, Mb/s (Table 2: 5 Gb/s/unit).
    pub cpu_ram_mbps_per_unit: u64,
    /// RAM↔storage bandwidth per unit, Mb/s (Table 2: 1 Gb/s/unit).
    pub ram_sto_mbps_per_unit: u64,
    /// Box switch port count (paper §5.2: 64).
    pub box_switch_ports: u16,
    /// Intra-rack switch port count (paper §5.2: 256).
    pub rack_switch_ports: u16,
    /// Inter-rack switch port count (paper §5.2: 512).
    pub inter_rack_switch_ports: u16,
}

impl NetworkConfig {
    /// The paper's configuration.
    pub const fn paper() -> Self {
        NetworkConfig {
            link_mbps: 200_000,
            box_uplink_width: 8,
            rack_uplink_width: 16,
            cpu_ram_mbps_per_unit: 5_000,
            ram_sto_mbps_per_unit: 1_000,
            box_switch_ports: 64,
            rack_switch_ports: 256,
            inter_rack_switch_ports: 512,
        }
    }

    /// Total Mb/s of one box uplink trunk.
    pub const fn box_trunk_mbps(&self) -> u64 {
        self.link_mbps * self.box_uplink_width as u64
    }

    /// Total Mb/s of one rack uplink trunk.
    pub const fn rack_trunk_mbps(&self) -> u64 {
        self.link_mbps * self.rack_uplink_width as u64
    }

    /// Sanity-check the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.link_mbps == 0 {
            return Err("links must have non-zero capacity".into());
        }
        if self.box_uplink_width == 0 || self.rack_uplink_width == 0 {
            return Err("trunks must contain at least one link".into());
        }
        for p in [
            self.box_switch_ports,
            self.rack_switch_ports,
            self.inter_rack_switch_ports,
        ] {
            if !p.is_power_of_two() || p < 2 {
                return Err(format!(
                    "switch port counts must be powers of two >= 2 for a Benes fabric, got {p}"
                ));
            }
        }
        Ok(())
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 2 and the §3.1/§5.2 constants.
    #[test]
    fn paper_constants() {
        let c = NetworkConfig::paper();
        assert_eq!(c.link_mbps, 200_000); // 8 x 25 Gb/s
        assert_eq!(c.cpu_ram_mbps_per_unit, 5_000); // 5 Gb/s/unit
        assert_eq!(c.ram_sto_mbps_per_unit, 1_000); // 1 Gb/s/unit
        assert_eq!(c.box_switch_ports, 64);
        assert_eq!(c.rack_switch_ports, 256);
        assert_eq!(c.inter_rack_switch_ports, 512);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn trunk_capacity_derivation() {
        let c = NetworkConfig::paper();
        // One SiP link per brick: 8 x 200 Gb/s per box.
        assert_eq!(c.box_trunk_mbps(), 1_600_000);
        assert_eq!(c.rack_trunk_mbps(), 3_200_000);
    }

    #[test]
    fn validation_rejects_non_pow2_switches() {
        let mut c = NetworkConfig::paper();
        c.rack_switch_ports = 100;
        assert!(c.validate().is_err());

        let mut c = NetworkConfig::paper();
        c.box_uplink_width = 0;
        assert!(c.validate().is_err());

        let mut c = NetworkConfig::paper();
        c.link_mbps = 0;
        assert!(c.validate().is_err());
    }
}
