//! End-to-end simulations through the facade: figure shapes at reduced
//! scale, determinism, and conservation of resources.

use risa::prelude::*;
use risa::sim::experiments;
use risa::workload::azure::{generate_with, AzureProcess};

fn run(algo: Algorithm, spec: WorkloadSpec) -> RunReport {
    SimulationBuilder::new()
        .algorithm(algo)
        .workload(spec)
        .build()
        .run()
}

/// Figure 5's shape at 1200 VMs: RISA/RISA-BF make dramatically fewer
/// inter-rack assignments than NULB/NALB, with zero drops.
#[test]
fn fig5_shape_holds_end_to_end() {
    let spec = WorkloadSpec::Synthetic(SyntheticConfig::small(1200, 2023));
    let reports: Vec<RunReport> = Algorithm::ALL
        .iter()
        .map(|&a| run(a, spec.clone()))
        .collect();
    let by = |a: Algorithm| reports.iter().find(|r| r.algorithm == a).unwrap();
    assert!(by(Algorithm::Nulb).inter_rack_assignments >= 20);
    assert!(
        by(Algorithm::Risa).inter_rack_assignments * 5
            <= by(Algorithm::Nulb).inter_rack_assignments,
        "RISA must cut inter-rack assignments at least 5x vs NULB"
    );
    assert!(
        by(Algorithm::RisaBf).inter_rack_assignments <= by(Algorithm::Risa).inter_rack_assignments,
        "best-fit packs at least as well as next-fit in the paper's runs"
    );
    for r in &reports {
        assert_eq!(r.dropped, 0, "{}: unexpected drops", r.algorithm);
    }
}

/// Figure 7/8's shape on a reduced Azure slice: zero inter-rack and zero
/// inter-network utilization for RISA/RISA-BF; equal intra utilization for
/// every algorithm when nothing drops.
#[test]
fn fig7_fig8_shape_on_azure_3000() {
    let spec = WorkloadSpec::azure(AzureSubset::N3000, 5);
    let reports: Vec<RunReport> = Algorithm::ALL
        .iter()
        .map(|&a| run(a, spec.clone()))
        .collect();
    let by = |a: Algorithm| reports.iter().find(|r| r.algorithm == a).unwrap();
    assert_eq!(by(Algorithm::Risa).inter_rack_assignments, 0);
    assert_eq!(by(Algorithm::RisaBf).inter_rack_assignments, 0);
    assert!(by(Algorithm::Nulb).inter_rack_assignments > 0);
    assert_eq!(by(Algorithm::Risa).inter_net_utilization, 0.0);
    assert!(by(Algorithm::Nulb).inter_net_utilization > 0.0);
    // Intra utilization equal across algorithms (paper Figure 8, given no
    // drops): every admitted VM crosses the same box uplinks.
    let u0 = by(Algorithm::Nulb).intra_net_utilization;
    for r in &reports {
        assert_eq!(r.dropped, 0);
        assert!(
            (r.intra_net_utilization - u0).abs() < 1e-6,
            "{}: intra utilization diverged",
            r.algorithm
        );
    }
}

/// Figures 9 and 10: RISA's optical power is strictly below NULB's, and
/// its mean CPU-RAM latency is exactly 110 ns while NULB's exceeds it.
#[test]
fn fig9_fig10_shape_on_azure_3000() {
    let spec = WorkloadSpec::azure(AzureSubset::N3000, 5);
    let nulb = run(Algorithm::Nulb, spec.clone());
    let risa = run(Algorithm::Risa, spec);
    assert!(risa.optical_power_w < nulb.optical_power_w);
    assert_eq!(risa.mean_cpu_ram_latency_ns, 110.0);
    assert!(nulb.mean_cpu_ram_latency_ns > 110.0);
}

/// Identical seeds reproduce identical reports (wall-clock field aside) —
/// the determinism claim of DESIGN.md.
#[test]
fn determinism_across_runs() {
    let spec = WorkloadSpec::Synthetic(SyntheticConfig::small(400, 99));
    let mut a = run(Algorithm::RisaBf, spec.clone());
    let mut b = run(Algorithm::RisaBf, spec);
    a.sched_seconds = 0.0;
    b.sched_seconds = 0.0;
    assert_eq!(a, b);
}

/// Drop accounting always balances: admitted + dropped == total.
#[test]
fn drop_accounting_balances_under_overload() {
    // Very fast arrivals overload the cluster and force drops.
    let cfg = SyntheticConfig {
        num_vms: 1500,
        interarrival_mean: 2.0,
        ..SyntheticConfig::paper(3)
    };
    for algo in Algorithm::ALL {
        let r = run(algo, WorkloadSpec::Synthetic(cfg));
        assert_eq!(r.admitted + r.dropped, r.total_vms, "{algo}");
        assert_eq!(r.dropped, r.dropped_compute + r.dropped_network, "{algo}");
        assert!(r.dropped > 0, "{algo} should drop under 5x overload");
    }
}

/// The experiment matrix runner produces a complete, labelled grid.
#[test]
fn experiment_matrix_is_complete() {
    let rep = experiments::fig5_with(1, &WorkloadSpec::Synthetic(SyntheticConfig::small(200, 1)));
    assert_eq!(rep.runs.len(), 4);
    for a in Algorithm::ALL {
        assert!(rep.run(a, "synthetic").is_some(), "{a} missing");
    }
    assert!(rep.rendered.contains("inter-rack"));
}

/// Figures 11/12, machine-independently: the deterministic per-VM
/// operation counts order exactly as the paper's execution times do —
/// NALB > NULB ≫ RISA-BF ≥ RISA-level work.
#[test]
fn fig11_fig12_work_ordering_is_deterministic() {
    let spec = WorkloadSpec::azure(AzureSubset::N3000, 2023);
    let ops: Vec<(Algorithm, f64)> = Algorithm::ALL
        .iter()
        .map(|&a| (a, run(a, spec.clone()).work.ops_per_call()))
        .collect();
    let by = |a: Algorithm| ops.iter().find(|(x, _)| *x == a).unwrap().1;
    assert!(
        by(Algorithm::Nalb) > by(Algorithm::Nulb),
        "NALB's modified BFS must cost more than NULB"
    );
    assert!(
        by(Algorithm::Nulb) > 2.0 * by(Algorithm::Risa),
        "the paper's >2x RISA speedup vs NULB (ours: {} vs {})",
        by(Algorithm::Nulb),
        by(Algorithm::Risa)
    );
    assert!(
        by(Algorithm::Nalb) > 3.0 * by(Algorithm::Risa),
        "the paper's >4x RISA speedup vs NALB (ours: {} vs {})",
        by(Algorithm::Nalb),
        by(Algorithm::Risa)
    );
}

/// Every algorithm passes a fully audited end-to-end run (the shadow
/// ledger independently re-validates each grant and release).
#[test]
fn audited_runs_pass_for_all_algorithms() {
    for algo in Algorithm::ALL {
        let report = risa::sim::SimulationBuilder::new()
            .algorithm(algo)
            .workload(WorkloadSpec::Synthetic(SyntheticConfig::small(500, 31)))
            .audit(true)
            .build()
            .run(); // panics on any audit violation
        assert_eq!(report.admitted + report.dropped, 500, "{algo}");
    }
}

/// Timeline recording: the series ramps up, peaks, and drains to zero,
/// consistently with the report's aggregates.
#[test]
fn timeline_series_is_consistent() {
    let mut sim = risa::sim::SimulationBuilder::new()
        .algorithm(Algorithm::Risa)
        .workload(WorkloadSpec::synthetic(400, 11))
        .record_timeline(200.0)
        .build();
    let report = sim.run();
    let tl = sim.timeline().expect("enabled");
    assert!(!tl.points().is_empty());
    assert!(tl.peak_resident() > 0);
    assert!(tl.peak_resident() <= report.admitted);
    // The run ends drained.
    let last = tl.points().last().unwrap();
    assert_eq!(last.resident_vms, 0);
    assert_eq!(last.cpu_used, 0.0);
    // CSV round shape: header + one line per point.
    let csv = tl.to_csv();
    assert_eq!(csv.lines().count(), tl.points().len() + 1);
    // Samples are strictly time-ordered, and the sampler records at most
    // one point per grid window (the recorded time is the first event at
    // or after each grid point, so raw gaps may fall slightly under the
    // interval while grid indices stay strictly increasing).
    assert!(tl.points().windows(2).all(|w| w[1].t > w[0].t));
    let horizon = tl.points().last().unwrap().t;
    assert!(tl.points().len() as f64 <= horizon / tl.interval() + 2.0);
}

/// A custom (slower) Azure process keeps every invariant intact.
#[test]
fn custom_azure_process_end_to_end() {
    let w = generate_with(
        AzureSubset::N3000,
        4,
        AzureProcess {
            interarrival_mean: 30.0,
            ..AzureProcess::default()
        },
    );
    let r = run(Algorithm::Risa, WorkloadSpec::Trace(w));
    assert_eq!(r.dropped, 0);
    assert_eq!(r.inter_rack_assignments, 0);
    assert!(r.intra_net_utilization > 0.0);
}
