//! Integration reproduction of the paper's §4.3 toy examples through the
//! public facade (Tables 3 and 4).

use risa::network::{FlowDemands, NetworkConfig, NetworkState};
use risa::prelude::*;
use risa::sched::{toy, ScheduleOutcome};

fn assign(
    algo: Algorithm,
    cluster: &mut Cluster,
    net: &mut NetworkState,
) -> risa::sched::VmAssignment {
    let demand = toy::typical_vm_demand(cluster);
    let mut sched = Scheduler::new(algo, cluster);
    match sched.schedule(cluster, net, &demand) {
        ScheduleOutcome::Assigned(a) => a,
        ScheduleOutcome::Dropped(r) => panic!("{algo} dropped the typical VM: {r:?}"),
    }
}

/// §4.3.1: NULB and NALB choose table ids (2, 1, 2) — inter-rack; RISA
/// chooses (2, 2, 2) — intra-rack.
#[test]
fn toy_example_1_matches_paper() {
    let ids = toy::table3_ids();
    for algo in [Algorithm::Nulb, Algorithm::Nalb] {
        let mut cluster = toy::table3_cluster();
        let mut net = NetworkState::new(NetworkConfig::paper(), &cluster);
        let a = assign(algo, &mut cluster, &mut net);
        assert_eq!(a.placement.grant(ResourceKind::Cpu).box_id, ids.cpu[2]);
        assert_eq!(a.placement.grant(ResourceKind::Ram).box_id, ids.ram[1]);
        assert_eq!(a.placement.grant(ResourceKind::Storage).box_id, ids.sto[2]);
        assert!(!a.intra_rack, "{algo} must go inter-rack here");
    }
    // RISA: exactly the paper's (2, 2, 2).
    {
        let mut cluster = toy::table3_cluster();
        let mut net = NetworkState::new(NetworkConfig::paper(), &cluster);
        let a = assign(Algorithm::Risa, &mut cluster, &mut net);
        assert_eq!(a.placement.grant(ResourceKind::Cpu).box_id, ids.cpu[2]);
        assert_eq!(a.placement.grant(ResourceKind::Ram).box_id, ids.ram[2]);
        assert_eq!(a.placement.grant(ResourceKind::Storage).box_id, ids.sto[2]);
        assert!(a.intra_rack);
    }
    // RISA-BF: best-fit prefers the fuller boxes (3, 3, 2) — still all in
    // rack 1, which is the property the toy example demonstrates.
    {
        let mut cluster = toy::table3_cluster();
        let mut net = NetworkState::new(NetworkConfig::paper(), &cluster);
        let a = assign(Algorithm::RisaBf, &mut cluster, &mut net);
        assert_eq!(a.placement.grant(ResourceKind::Cpu).box_id, ids.cpu[3]);
        assert_eq!(a.placement.grant(ResourceKind::Ram).box_id, ids.ram[3]);
        assert_eq!(a.placement.grant(ResourceKind::Storage).box_id, ids.sto[2]);
        assert!(a.intra_rack);
    }
}

/// Table 4 via the public API: the full RISA and RISA-BF box traces.
/// VM 6 (16 cores) is unplaceable for both (the paper's RISA-BF column for
/// that cell is arithmetically impossible — 100 cores vs 96; EXPERIMENTS.md).
#[test]
fn table_4_traces_match_paper() {
    let run = |algo: Algorithm| -> Vec<Option<u8>> {
        let mut cluster = toy::table4_cluster();
        let mut net = NetworkState::new(NetworkConfig::paper(), &cluster);
        let mut sched = Scheduler::new(algo, &cluster);
        let ids = toy::table3_ids();
        toy::TABLE4_CPU_REQUESTS
            .iter()
            .map(|&cores| {
                let d = UnitDemand::from_natural(&cluster.config().units, cores, 0, 0);
                let no_flows = FlowDemands {
                    cpu_ram_mbps: 0,
                    ram_sto_mbps: 0,
                };
                match sched.schedule_with_flows(&mut cluster, &mut net, &d, &no_flows) {
                    ScheduleOutcome::Assigned(a) => Some(u8::from(
                        a.placement.grant(ResourceKind::Cpu).box_id == ids.cpu[3],
                    )),
                    ScheduleOutcome::Dropped(_) => None,
                }
            })
            .collect()
    };
    assert_eq!(
        run(Algorithm::Risa),
        [
            Some(0),
            Some(0),
            Some(0),
            Some(1),
            Some(1),
            Some(1),
            None,
            Some(1)
        ],
        "Table 4 RISA column"
    );
    assert_eq!(
        run(Algorithm::RisaBf),
        [
            Some(1),
            Some(1),
            Some(0),
            Some(0),
            Some(1),
            Some(0),
            None,
            Some(0)
        ],
        "Table 4 RISA-BF column (VM 6 corrected)"
    );
}

/// The contention-ratio arithmetic the paper prints in §4.3.1.
#[test]
fn toy_contention_ratios() {
    use risa::sched::{contention_ratios, most_contended};
    let cluster = toy::table3_cluster();
    let demand = toy::typical_vm_demand(&cluster);
    let crs = contention_ratios(&cluster, &demand, None);
    assert!((crs[0] - 0.0833).abs() < 1e-3, "CPU CR ~ 0.08");
    assert!((crs[1] - 0.25).abs() < 1e-12, "RAM CR = 0.25");
    assert!((crs[2] - 0.1667).abs() < 1e-3, "STO CR ~ 0.17");
    assert_eq!(most_contended(&cluster, &demand, None), ResourceKind::Ram);
}
