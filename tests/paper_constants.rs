//! Cross-crate checks that every constant the paper states (Tables 1, 2,
//! §3.2, §5.2) is wired through the public facade unchanged.

use risa::prelude::*;

#[test]
fn table1_through_facade() {
    let cfg = TopologyConfig::paper();
    assert_eq!(cfg.racks, 18);
    assert_eq!(cfg.box_mix.total(), 6);
    assert_eq!(cfg.bricks_per_box, 8);
    assert_eq!(cfg.units_per_brick, 16);
    assert_eq!(cfg.units.cpu_cores_per_unit, 4);
    assert_eq!(cfg.units.ram_gb_per_unit, 4);
    assert_eq!(cfg.units.storage_gb_per_unit, 64);

    let cluster = Cluster::new(cfg);
    assert_eq!(cluster.num_boxes(), 108);
    assert_eq!(cluster.total_capacity(ResourceKind::Cpu), 4608);
}

#[test]
fn table2_through_facade() {
    let n = NetworkConfig::paper();
    assert_eq!(n.cpu_ram_mbps_per_unit, 5_000); // 5 Gb/s/unit
    assert_eq!(n.ram_sto_mbps_per_unit, 1_000); // 1 Gb/s/unit
    assert_eq!(n.link_mbps, 200_000); // 8 x 25 Gb/s
}

#[test]
fn section_3_2_photonics_constants() {
    let p = risa::photonics::PhotonicsConfig::paper();
    assert_eq!(p.p_trim_mw, 22.67);
    assert_eq!(p.p_sw_mw, 13.75);
    assert_eq!(p.alpha, 0.9);
    assert_eq!(p.transceiver_pj_per_bit, 22.5);
}

#[test]
fn section_5_2_switch_sizes_and_latency() {
    use risa::photonics::benes;
    let n = NetworkConfig::paper();
    assert_eq!(n.box_switch_ports, 64);
    assert_eq!(n.rack_switch_ports, 256);
    assert_eq!(n.inter_rack_switch_ports, 512);
    // Beneš path cells for the three sizes.
    assert_eq!(benes::path_cells(64), 11);
    assert_eq!(benes::path_cells(256), 15);
    assert_eq!(benes::path_cells(512), 17);

    let l = risa::sim::LatencyConfig::paper();
    assert_eq!(l.intra_rack_ns, 110.0);
    assert_eq!(l.inter_rack_ns, 330.0);
}

#[test]
fn synthetic_workload_parameters() {
    let w = Workload::synthetic(&SyntheticConfig::paper(1));
    assert_eq!(w.len(), 2500);
    assert!(w.vms().iter().all(|v| v.storage_gb == 128));
    assert!(w.vms().iter().all(|v| (1..=32).contains(&v.cpu_cores)));
    assert!(w.vms().iter().all(|v| (1..=32).contains(&v.ram_gb)));
    assert_eq!(w.vms()[0].lifetime, 6300.0);
    assert_eq!(w.vms()[100].lifetime, 6660.0);
}

#[test]
fn azure_marginals_match_fig6() {
    // One spot check per subset through the facade (exhaustive checks live
    // in risa-workload's unit tests).
    let w3 = Workload::azure(AzureSubset::N3000, 9);
    assert_eq!(w3.vms().iter().filter(|v| v.cpu_cores == 1).count(), 1326);
    let w5 = Workload::azure(AzureSubset::N5000, 9);
    assert_eq!(w5.vms().iter().filter(|v| v.cpu_cores == 2).count(), 2514);
    let w7 = Workload::azure(AzureSubset::N7500, 9);
    assert_eq!(w7.vms().iter().filter(|v| v.ram_gb == 56).count(), 108);
}
