//! Serialization round-trips across the whole public surface: traces
//! (JSON and CSV), configurations, reports, and scheduler state.

use risa::prelude::*;
use risa::sim::SimConfig;
use risa::workload::{csv, ops};

#[test]
fn workload_json_and_csv_agree() {
    let w = Workload::synthetic(&SyntheticConfig::small(80, 9));
    let via_json = Workload::from_json(&w.to_json()).unwrap();
    let via_csv = csv::from_csv(w.name(), &csv::to_csv(&w)).unwrap();
    assert_eq!(via_json, w);
    assert_eq!(via_csv, w);
}

#[test]
fn azure_trace_roundtrips() {
    let w = Workload::azure(AzureSubset::N3000, 4);
    let back = Workload::from_json(&w.to_json()).unwrap();
    assert_eq!(back, w);
    // Figure 6 marginals survive the round-trip.
    assert_eq!(back.vms().iter().filter(|v| v.cpu_cores == 1).count(), 1326);
}

#[test]
fn sliced_traces_replay_identically() {
    let base = Workload::azure(AzureSubset::N3000, 4);
    let slice = ops::take_first(&base, 500);
    let run = |w: &Workload| {
        SimulationBuilder::new()
            .algorithm(Algorithm::Risa)
            .workload(WorkloadSpec::Trace(w.clone()))
            .build()
            .run()
    };
    let direct = run(&slice);
    let via_json = run(&Workload::from_json(&slice.to_json()).unwrap());
    assert_eq!(direct.admitted, via_json.admitted);
    assert_eq!(
        direct.inter_rack_assignments,
        via_json.inter_rack_assignments
    );
    assert_eq!(direct.optical_energy_j, via_json.optical_energy_j);
}

#[test]
fn sim_config_roundtrips() {
    let cfg = SimConfig::paper();
    let json = serde_json::to_string_pretty(&cfg).unwrap();
    let back: SimConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(cfg, back);
}

#[test]
fn run_report_roundtrips() {
    let report = SimulationBuilder::new()
        .algorithm(Algorithm::Nalb)
        .workload(WorkloadSpec::synthetic(60, 2))
        .build()
        .run();
    let json = serde_json::to_string(&report).unwrap();
    let back: RunReport = serde_json::from_str(&json).unwrap();
    assert_eq!(report, back);
    // The JSON exposes the work counters for external analysis.
    assert!(json.contains("boxes_scanned"));
}

#[test]
fn scheduler_state_roundtrips() {
    // RISA's cursors are part of its semantics; serializing mid-run and
    // resuming must continue the same round-robin sequence.
    use risa::network::{NetworkConfig, NetworkState};
    use risa::sched::ScheduleOutcome;
    let mut cluster = Cluster::new(TopologyConfig::paper());
    let mut net = NetworkState::new(NetworkConfig::paper(), &cluster);
    let mut sched = Scheduler::new(Algorithm::Risa, &cluster);
    let d = UnitDemand::new(2, 4, 2);
    for _ in 0..5 {
        assert!(matches!(
            sched.schedule(&mut cluster, &mut net, &d),
            ScheduleOutcome::Assigned(_)
        ));
    }
    let json = serde_json::to_string(&sched).unwrap();
    let mut resumed: Scheduler = serde_json::from_str(&json).unwrap();
    // Both continue at rack 5.
    let a = match resumed.schedule(&mut cluster, &mut net, &d) {
        ScheduleOutcome::Assigned(a) => a,
        ScheduleOutcome::Dropped(r) => panic!("{r:?}"),
    };
    assert_eq!(
        cluster.rack_of(a.placement.grant(ResourceKind::Cpu).box_id),
        risa::topology::RackId(5)
    );
}
