//! Cross-crate property tests: conservation, invariants, and fairness
//! under randomized schedules through the public facade.

use proptest::prelude::*;
use risa::network::{NetworkConfig, NetworkState};
use risa::prelude::*;
use risa::sched::ScheduleOutcome;

fn arb_demand() -> impl Strategy<Value = UnitDemand> {
    // Paper-realistic demands: each kind fits a single box; max synthetic
    // VM is 8/8/2 units, Azure RAM reaches 14 units.
    (1u32..=8, 1u32..=14, 1u32..=2).prop_map(|(c, r, s)| UnitDemand::new(c, r, s))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Schedule a random batch, release everything, and the cluster and
    /// network return exactly to pristine — for every algorithm.
    #[test]
    fn schedule_release_conserves_state(
        demands in prop::collection::vec(arb_demand(), 1..120),
        algo_idx in 0usize..4,
    ) {
        let algo = Algorithm::ALL[algo_idx];
        let mut cluster = Cluster::new(TopologyConfig::paper());
        let mut net = NetworkState::new(NetworkConfig::paper(), &cluster);
        let mut sched = Scheduler::new(algo, &cluster);
        let mut held = Vec::new();
        for d in &demands {
            if let ScheduleOutcome::Assigned(a) = sched.schedule(&mut cluster, &mut net, d) {
                held.push(a);
            }
            cluster.check_invariants().map_err(TestCaseError::fail)?;
        }
        for a in &held {
            Scheduler::release(&mut cluster, &mut net, a);
        }
        prop_assert_eq!(cluster.total_available(ResourceKind::Cpu), 4608);
        prop_assert_eq!(cluster.total_available(ResourceKind::Ram), 4608);
        prop_assert_eq!(cluster.total_available(ResourceKind::Storage), 4608);
        prop_assert_eq!(net.intra_used_mbps(), 0);
        prop_assert_eq!(net.inter_used_mbps(), 0);
        net.check_invariants().map_err(TestCaseError::fail)?;
    }

    /// An admitted VM's grants exactly match its demand, and the placement
    /// marked intra-rack really is single-rack.
    #[test]
    fn assignments_are_faithful(demands in prop::collection::vec(arb_demand(), 1..60)) {
        let mut cluster = Cluster::new(TopologyConfig::paper());
        let mut net = NetworkState::new(NetworkConfig::paper(), &cluster);
        let mut sched = Scheduler::new(Algorithm::Risa, &cluster);
        for d in &demands {
            if let ScheduleOutcome::Assigned(a) = sched.schedule(&mut cluster, &mut net, d) {
                for kind in [ResourceKind::Cpu, ResourceKind::Ram, ResourceKind::Storage] {
                    let g = a.placement.grant(kind);
                    prop_assert_eq!(g.units, d.get(kind));
                    prop_assert_eq!(cluster.kind_of(g.box_id), kind);
                }
                prop_assert_eq!(a.intra_rack, a.placement.is_intra_rack(&cluster));
                if a.intra_rack {
                    prop_assert!(!a.network.is_inter_rack());
                }
            }
        }
    }

    /// RISA's round-robin fairness: on a uniform stream of identical VMs
    /// that all fit, consecutive assignments never reuse a rack before all
    /// others have been visited.
    #[test]
    fn round_robin_visits_all_racks(units in 1u32..=4) {
        let d = UnitDemand::new(units, units, 1);
        let mut cluster = Cluster::new(TopologyConfig::paper());
        let mut net = NetworkState::new(NetworkConfig::paper(), &cluster);
        let mut sched = Scheduler::new(Algorithm::Risa, &cluster);
        let mut racks = Vec::new();
        for _ in 0..18 {
            match sched.schedule(&mut cluster, &mut net, &d) {
                ScheduleOutcome::Assigned(a) => {
                    racks.push(cluster.rack_of(a.placement.grant(ResourceKind::Cpu).box_id));
                }
                ScheduleOutcome::Dropped(r) => {
                    return Err(TestCaseError::fail(format!("dropped: {r:?}")));
                }
            }
        }
        let mut sorted = racks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), 18, "first 18 VMs must cover all 18 racks: {:?}", racks);
    }

    /// Workload JSON serialization round-trips bit-exactly.
    #[test]
    fn workload_json_roundtrip(n in 1u32..100, seed in 0u64..1000) {
        let w = Workload::synthetic(&SyntheticConfig::small(n, seed));
        let back = Workload::from_json(&w.to_json()).unwrap();
        prop_assert_eq!(w, back);
    }
}
