//! Property battery for the resident pool: for arbitrary job counts,
//! per-item cost skews, and thread counts, every consuming method of the
//! `par_iter` surface must equal its sequential counterpart exactly.
//!
//! This is the executor half of the workspace's determinism contract
//! (the simulation half lives in `crates/sim/tests/determinism.rs`):
//! order preservation and result equality may not depend on how many
//! workers run, how unevenly the items cost, or how the split tree gets
//! stolen. Skews deliberately concentrate cost on sparse indices so
//! early chunks finish long before late ones and stolen subtrees
//! complete out of input order — the reassembly must hide all of it.

use proptest::prelude::*;
use rayon::prelude::*;
use rayon::with_num_threads;

/// Burn CPU proportional to the skew pattern and return a value that
/// depends on every input, so reordering or dropping an item is visible.
fn work(i: u64, skew: u32) -> u64 {
    let spins = match skew {
        // Uniform and trivial.
        0 => 0,
        // Sparse spikes: every 97th item is ~1000x the rest.
        1 => {
            if i.is_multiple_of(97) {
                2_000
            } else {
                2
            }
        }
        // Monotone ramp: late items cost more, so early workers go idle
        // and steal from the laggards.
        _ => (i % 257) * 4,
    };
    let mut acc = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ skew as u64;
    for _ in 0..spins {
        acc = acc.rotate_left(7).wrapping_add(0x2545_F491_4F6C_DD1D);
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `map().collect()` equals the sequential map at any width.
    #[test]
    fn map_collect_matches_sequential(
        len in 0usize..10_000,
        threads in 1usize..=16,
        skew in 0u32..3,
    ) {
        let input: Vec<u64> = (0..len as u64).collect();
        let expect: Vec<u64> = input.iter().map(|&x| work(x, skew)).collect();
        let got: Vec<u64> =
            with_num_threads(threads, || input.par_iter().map(|&x| work(x, skew)).collect());
        prop_assert_eq!(got, expect, "len={} threads={} skew={}", len, threads, skew);
    }

    /// `flat_map().collect()` preserves both order and multiplicity —
    /// items may expand to zero, one, or several outputs.
    #[test]
    fn flat_map_collect_matches_sequential(
        len in 0usize..6_000,
        threads in 1usize..=16,
        skew in 0u32..3,
    ) {
        let input: Vec<u64> = (0..len as u64).collect();
        let expand = |x: u64| -> Vec<u64> { (0..x % 4).map(|k| work(x, skew) ^ k).collect() };
        let expect: Vec<u64> = input.iter().flat_map(|&x| expand(x)).collect();
        let got: Vec<u64> =
            with_num_threads(threads, || input.par_iter().flat_map(|&x| expand(x)).collect());
        prop_assert_eq!(got, expect, "len={} threads={} skew={}", len, threads, skew);
    }

    /// `sum()` folds in input order, so it is bit-exact against the
    /// sequential sum (wrapping arithmetic makes overflow well-defined).
    #[test]
    fn sum_matches_sequential(
        len in 0usize..10_000,
        threads in 1usize..=16,
        skew in 0u32..3,
    ) {
        let input: Vec<u64> = (0..len as u64).map(|x| work(x, skew) >> 16).collect();
        let expect: u64 = input.iter().sum();
        let got: u64 = with_num_threads(threads, || input.par_iter().sum());
        prop_assert_eq!(got, expect, "len={} threads={} skew={}", len, threads, skew);
    }

    /// The same drive repeated on the resident (already warm) pool gives
    /// the same bytes every time — no hidden per-drive state.
    #[test]
    fn repeated_drives_are_stable(
        len in 1usize..4_000,
        threads in 2usize..=16,
    ) {
        let input: Vec<u64> = (0..len as u64).collect();
        let run = || -> Vec<u64> {
            with_num_threads(threads, || input.par_iter().map(|&x| work(x, 1)).collect())
        };
        let first = run();
        let second = run();
        prop_assert_eq!(first, second, "len={} threads={}", len, threads);
    }
}
