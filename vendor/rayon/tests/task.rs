//! Integration battery for `spawn_task`/`Task` — the shard-prefetch
//! primitive. The unit tests in `src/task.rs` cover the basic external
//! spawn/wait contract; these exercise the interactions that matter to
//! the streaming arrival pipeline: spawning from inside pool workers,
//! waiting while other drives contend for the same workers, and the
//! producer/consumer overlap that is the whole point.

use rayon::prelude::*;
use rayon::{spawn_task, with_num_threads};

/// A worker that waits on a task it spawned must not deadlock, even when
/// every worker in the pool is doing the same thing at once (the wait
/// help-loop can pop the task back off the waiter's own deque).
#[test]
fn every_worker_spawning_and_waiting_does_not_deadlock() {
    for threads in [2, 4] {
        let jobs: Vec<u64> = (0..32).collect();
        let got: Vec<u64> = with_num_threads(threads, || {
            jobs.par_iter()
                .map(|&j| spawn_task(move || j * j).wait())
                .collect()
        });
        let expect: Vec<u64> = jobs.iter().map(|&j| j * j).collect();
        assert_eq!(got, expect, "threads={threads}");
    }
}

/// Chained prefetch, the exact streaming-cursor shape: hold a task for
/// item k+1 while "consuming" item k, from an external thread.
#[test]
fn chained_prefetch_yields_items_in_order() {
    for threads in [1, 2, 8] {
        with_num_threads(threads, || {
            let produce = |k: u64| move || (k, k * 10);
            let mut pending = spawn_task(produce(0));
            let mut seen = Vec::new();
            for next in 1..=16u64 {
                let (k, v) = pending.wait();
                pending = spawn_task(produce(next));
                seen.push((k, v));
            }
            let (k, v) = pending.wait();
            seen.push((k, v));
            let expect: Vec<(u64, u64)> = (0..=16).map(|k| (k, k * 10)).collect();
            assert_eq!(seen, expect, "threads={threads}");
        });
    }
}

/// The overlap proof: a slow producer prefetched behind a slow consumer
/// must cost roughly max(producer, consumer), not their sum.
#[test]
fn prefetch_overlaps_producer_and_consumer() {
    let step = std::time::Duration::from_millis(25);
    let rounds = 8;
    let timed = |threads: usize| {
        with_num_threads(threads, || {
            let t0 = std::time::Instant::now();
            let mut pending = spawn_task(move || std::thread::sleep(step));
            for _ in 0..rounds {
                std::thread::sleep(step); // "consume" the current item
                pending.wait();
                pending = spawn_task(move || std::thread::sleep(step));
            }
            pending.wait();
            t0.elapsed()
        })
    };
    let sequential = timed(1);
    let overlapped = timed(4);
    // Sequential: ~2 * rounds * step (+2 edge steps). Overlapped: ~rounds
    // * step. Require a conservative 1.4x gap so loaded CI stays green.
    assert!(
        sequential.as_secs_f64() > 1.4 * overlapped.as_secs_f64(),
        "prefetch failed to overlap: sequential {sequential:?} vs overlapped {overlapped:?}"
    );
}

/// Tasks spawned from a worker are visible to sibling thieves: flood the
/// pool from one drive leaf and make sure all results come back.
#[test]
fn many_tasks_from_one_worker_all_complete() {
    let total: u64 = with_num_threads(4, || {
        let v = [(); 1];
        v.par_iter()
            .map(|_| {
                let tasks: Vec<_> = (0..64u64).map(|i| spawn_task(move || i + 1)).collect();
                tasks.into_iter().map(|t| t.wait()).sum::<u64>()
            })
            .sum()
    });
    assert_eq!(total, (1..=64).sum::<u64>());
}
