//! Nested-drive battery: `par_iter` inside `par_iter` — the experiment
//! matrix × sharded-trace-generation shape — must subdivide onto the
//! resident workers, preserve order at both levels, and re-raise inner
//! panics at the outer caller with their payload intact.

use rayon::prelude::*;
use rayon::with_num_threads;
use std::time::Duration;

/// Reference value for outer cell `i`, inner item `j`.
fn cell(i: u64, j: u64) -> u64 {
    i.wrapping_mul(1_000_003).wrapping_add(j * 7)
}

#[test]
fn nested_collect_preserves_order_at_both_levels() {
    let outer: Vec<u64> = (0..24).collect();
    let expect: Vec<Vec<u64>> = outer
        .iter()
        .map(|&i| (0..12).map(|j| cell(i, j)).collect())
        .collect();
    for threads in [2, 4, 8] {
        let got: Vec<Vec<u64>> = with_num_threads(threads, || {
            outer
                .par_iter()
                .map(|&i| {
                    let inner: Vec<u64> = (0..12).collect();
                    // The inner drive runs on the same resident workers.
                    inner.par_iter().map(|&j| cell(i, j)).collect()
                })
                .collect()
        });
        assert_eq!(got, expect, "threads={threads}");
    }
}

#[test]
fn three_deep_nesting_completes_and_preserves_order() {
    let expect: Vec<u64> = (0..8)
        .flat_map(|i| (0..4).flat_map(move |j| (0..3).map(move |k| cell(i, j) ^ k)))
        .collect();
    let got: Vec<u64> = with_num_threads(4, || {
        let outer: Vec<u64> = (0..8).collect();
        outer
            .par_iter()
            .flat_map(|&i| {
                let mid: Vec<u64> = (0..4).collect();
                mid.par_iter()
                    .flat_map(|&j| {
                        let leaf: Vec<u64> = (0..3).collect();
                        leaf.par_iter()
                            .map(|&k| cell(i, j) ^ k)
                            .collect::<Vec<u64>>()
                    })
                    .collect::<Vec<u64>>()
            })
            .collect()
    });
    assert_eq!(got, expect);
}

#[test]
fn nested_drives_complete_on_a_saturated_pool() {
    // Width 2 with 4×4 nested cells: more in-flight drives than workers.
    // The blocked outer frames must help with the inner leaves instead
    // of deadlocking. Completion (with correct results) is the assertion.
    let got: Vec<Vec<u64>> = with_num_threads(2, || {
        let outer: Vec<u64> = (0..4).collect();
        outer
            .par_iter()
            .map(|&i| {
                let inner: Vec<u64> = (0..4).collect();
                inner
                    .par_iter()
                    .map(|&j| {
                        std::thread::sleep(Duration::from_millis(2));
                        cell(i, j)
                    })
                    .collect()
            })
            .collect()
    });
    let expect: Vec<Vec<u64>> = (0..4)
        .map(|i| (0..4).map(|j| cell(i, j)).collect())
        .collect();
    assert_eq!(got, expect);
}

#[test]
fn nested_drives_subdivide_instead_of_serializing() {
    // 2 outer cells × 8 inner jobs at width 8. If the inner drives
    // serialized (outer-level parallelism only), at most 2 inner leaves
    // — one per outer cell — could ever be in flight at once. With true
    // subdivision, the stolen inner leaves overlap across workers, so
    // the peak in-flight count climbs well past 2. Asserted with a
    // concurrency high-water mark, not wall-clock (sleeps only hold the
    // overlap window open; a loaded CI machine can stretch time without
    // changing the count).
    use std::sync::atomic::{AtomicUsize, Ordering};
    let in_flight = AtomicUsize::new(0);
    let peak = AtomicUsize::new(0);
    let got: Vec<Vec<u64>> = with_num_threads(8, || {
        let outer: Vec<u64> = (0..2).collect();
        outer
            .par_iter()
            .map(|&i| {
                let inner: Vec<u64> = (0..8).collect();
                inner
                    .par_iter()
                    .map(|&j| {
                        let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_millis(20));
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                        cell(i, j)
                    })
                    .collect()
            })
            .collect()
    });
    let expect: Vec<Vec<u64>> = (0..2)
        .map(|i| (0..8).map(|j| cell(i, j)).collect())
        .collect();
    assert_eq!(got, expect);
    let peak = peak.load(Ordering::SeqCst);
    assert!(
        peak > 2,
        "nested drives must subdivide across workers (peak {peak} concurrent \
         inner leaves; serialized nesting cannot exceed 2)"
    );
}

#[test]
fn inner_panic_reraises_at_the_outer_caller_with_message_intact() {
    let result = std::panic::catch_unwind(|| {
        with_num_threads(4, || {
            let outer: Vec<u64> = (0..8).collect();
            let _: Vec<Vec<u64>> = outer
                .par_iter()
                .map(|&i| {
                    let inner: Vec<u64> = (0..8).collect();
                    inner
                        .par_iter()
                        .map(|&j| {
                            if i == 5 && j == 3 {
                                panic!("inner boom at cell ({i}, {j})");
                            }
                            cell(i, j)
                        })
                        .collect()
                })
                .collect();
        })
    });
    let payload = result.expect_err("inner panic must re-raise at the outer caller");
    let message = payload
        .downcast_ref::<String>()
        .expect("panic payload must survive the pool as its original String");
    assert!(
        message.contains("inner boom at cell (5, 3)"),
        "payload lost its message: {message:?}"
    );
}

#[test]
fn join_inside_a_drive_splits_on_the_worker_deque() {
    // Explicit `join` split points compose with `par_iter` drives: the
    // closure runs on a pool worker, so join takes the deque path.
    let got: Vec<(u64, u64)> = with_num_threads(4, || {
        let v: Vec<u64> = (0..64).collect();
        v.par_iter()
            .map(|&x| rayon::join(move || x + 1, move || x * 2))
            .collect()
    });
    let expect: Vec<(u64, u64)> = (0..64).map(|x| (x + 1, x * 2)).collect();
    assert_eq!(got, expect);
}

#[test]
fn join_propagates_panics_from_either_side() {
    let err_a = std::panic::catch_unwind(|| {
        with_num_threads(2, || {
            let v: Vec<u64> = (0..4).collect();
            let _: Vec<u64> = v
                .par_iter()
                .map(|&x| rayon::join(move || panic!("side a {x}"), move || x).1)
                .collect();
        })
    })
    .expect_err("side-a panic must propagate");
    assert!(err_a
        .downcast_ref::<String>()
        .is_some_and(|m| m.contains("side a")));

    let err_b = std::panic::catch_unwind(|| {
        with_num_threads(2, || {
            let v: Vec<u64> = (0..4).collect();
            let _: Vec<u64> = v
                .par_iter()
                .map(|&x| rayon::join(move || x, move || -> u64 { panic!("side b {x}") }).0)
                .collect();
        })
    })
    .expect_err("side-b panic must propagate");
    assert!(err_b
        .downcast_ref::<String>()
        .is_some_and(|m| m.contains("side b")));
}
