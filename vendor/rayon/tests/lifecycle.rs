//! Pool-lifecycle battery: residency (drives reuse workers — proven by
//! the spawn counter, not timing), `with_num_threads` pinning while the
//! pool is live on other threads, and the documented `set_num_threads`
//! semantics (applies to subsequent drives; the pool only grows).
//!
//! Every test in this binary keeps its width ≤ 8 and starts by warming
//! the pool to 8, so the process-global spawn counter is stable no
//! matter how the test harness orders or overlaps the tests.

use rayon::prelude::*;
use rayon::with_num_threads;

/// Warm the shared pool to this binary's maximum width.
fn warm() {
    with_num_threads(8, rayon::warm_up);
}

#[test]
fn repeated_drives_reuse_resident_workers() {
    warm();
    let spawned = rayon::total_worker_spawns();
    assert!(spawned >= 8, "warm-up must have spawned the pool");
    let input: Vec<u64> = (0..512).collect();
    let expect: Vec<u64> = input.iter().map(|&x| x * 3 + 1).collect();
    for round in 0..50 {
        let width = 2 + round % 7; // 2..=8, varying per drive
        let got: Vec<u64> =
            with_num_threads(width, || input.par_iter().map(|&x| x * 3 + 1).collect());
        assert_eq!(got, expect, "round={round}");
    }
    assert_eq!(
        rayon::total_worker_spawns(),
        spawned,
        "50 drives at varying widths must reuse the resident workers, not re-spawn"
    );
    assert_eq!(rayon::resident_workers(), rayon::total_worker_spawns());
}

#[test]
fn with_num_threads_pins_per_thread_while_the_pool_is_live_elsewhere() {
    warm();
    // Two external threads drive the shared resident pool concurrently
    // with different pins; each must observe exactly its own width
    // inside its closures, and both must get order-exact results.
    let driver = |pin: usize| {
        move || {
            let input: Vec<u64> = (0..256).collect();
            let expect: Vec<u64> = input.iter().map(|&x| x ^ pin as u64).collect();
            for _ in 0..30 {
                let (widths, values): (Vec<usize>, Vec<u64>) = with_num_threads(pin, || {
                    let pairs: Vec<(usize, u64)> = input
                        .par_iter()
                        .map(|&x| (rayon::current_num_threads(), x ^ pin as u64))
                        .collect();
                    pairs.into_iter().unzip()
                });
                assert!(
                    widths.iter().all(|&w| w == pin),
                    "pin {pin} leaked: saw widths {:?}",
                    widths.iter().collect::<std::collections::BTreeSet<_>>()
                );
                assert_eq!(values, expect, "pin={pin}");
            }
        }
    };
    let a = std::thread::spawn(driver(2));
    let b = std::thread::spawn(driver(5));
    a.join().expect("driver a");
    b.join().expect("driver b");
}

#[test]
fn set_num_threads_applies_to_subsequent_drives_and_never_shrinks_the_pool() {
    warm();
    let resident_before = rayon::resident_workers();

    // Growing (within this binary's ≤8 envelope): subsequent drives see
    // the new width.
    rayon::set_num_threads(6);
    assert_eq!(rayon::current_num_threads(), 6);
    let input: Vec<u64> = (0..128).collect();
    let widths: Vec<usize> = input
        .par_iter()
        .map(|_| rayon::current_num_threads())
        .collect();
    assert!(widths.iter().all(|&w| w == 6), "{widths:?}");

    // Shrinking: future drives narrow, but resident workers stay.
    rayon::set_num_threads(2);
    let widths: Vec<usize> = input
        .par_iter()
        .map(|_| rayon::current_num_threads())
        .collect();
    assert!(widths.iter().all(|&w| w == 2), "{widths:?}");
    assert!(
        rayon::resident_workers() >= resident_before,
        "set_num_threads must never tear down resident workers"
    );

    // A thread-local pin still beats the global value.
    with_num_threads(7, || assert_eq!(rayon::current_num_threads(), 7));

    // Leave the binary in its warm, wide state for sibling tests.
    rayon::set_num_threads(8);
}

#[test]
fn tiny_and_empty_drives_on_a_warm_pool() {
    warm();
    with_num_threads(8, || {
        let empty: Vec<u64> = Vec::new();
        let got: Vec<u64> = empty.par_iter().map(|&x| x).collect();
        assert!(got.is_empty());
        let one = [41u64];
        let got: Vec<u64> = one.as_slice().par_iter().map(|&x| x + 1).collect();
        assert_eq!(got, [42]);
    });
}

#[test]
fn a_panicked_drive_leaves_the_pool_usable() {
    warm();
    let spawned = rayon::total_worker_spawns();
    let result = std::panic::catch_unwind(|| {
        with_num_threads(4, || {
            let v: Vec<u64> = (0..64).collect();
            let _: Vec<u64> = v
                .par_iter()
                .map(|&x| if x == 17 { panic!("dead drive") } else { x })
                .collect();
        })
    });
    assert!(result.is_err());
    // The panic is contained to the drive: same workers, next drive fine.
    let got: Vec<u64> = with_num_threads(4, || {
        (0..64)
            .collect::<Vec<u64>>()
            .par_iter()
            .map(|&x| x)
            .collect()
    });
    assert_eq!(got, (0..64).collect::<Vec<u64>>());
    assert_eq!(
        rayon::total_worker_spawns(),
        spawned,
        "a panicked drive must not cost (or kill) workers"
    );
}
