//! Fire-and-forget tasks with a result handle — the prefetch primitive.
//!
//! [`crate::join`] is a *blocking* split point: called from an external
//! thread it degenerates to running both closures sequentially, which is
//! useless for producer/consumer overlap (a simulation engine that wants
//! the next workload shard generated *while* it drains the current one).
//! [`spawn_task`] fills that gap: it queues a heap-allocated job on the
//! resident pool and returns immediately with a [`Task`] handle; the
//! caller collects the result later with [`Task::wait`].
//!
//! Semantics, in the order the streaming arrival pipeline relies on them:
//!
//! * **Overlap** — with a pool width ≥ 2 the closure runs on a resident
//!   worker while the spawning thread keeps executing. With a width of 1
//!   the closure runs *inline* at the spawn site instead, so
//!   `RISA_THREADS=1` remains the exactly-sequential code path (and a
//!   single-width pool can never strand a queued job behind a blocked
//!   external waiter).
//! * **Deadlock freedom** — a pool worker waiting on a task *helps*: it
//!   keeps executing queued jobs (possibly including the spawned task
//!   itself, popped back off its own deque) until the task's latch opens,
//!   exactly like a `join` frame waiting on a stolen half. External
//!   waiters block on a mutex/condvar pair.
//! * **Panic propagation** — a panicking task parks its payload in the
//!   result slot; [`Task::wait`] re-raises it on the waiter.
//! * **Detachment** — dropping a [`Task`] without waiting is allowed: the
//!   job still runs (workers never exit), its result is simply dropped.
//!
//! Determinism note: *what* a task computes must not depend on *where* it
//! runs — the workspace's spawn sites compute pure functions of their
//! captures (a workload shard from `(seed, shard)` streams), so inline vs
//! pooled execution changes wall-clock overlap only, never bytes.

use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

use crate::job::{CoreLatch, Job, JobRef, Latch};
use crate::pool::current_num_threads;
use crate::registry;

/// Shared completion state between a spawned job and its [`Task`] handle.
struct Shared<T> {
    /// The result (or panic payload), written exactly once by the
    /// executing thread.
    slot: Mutex<Option<std::thread::Result<T>>>,
    /// Wakes an *external* waiter blocked in [`Task::wait`].
    cond: Condvar,
    /// Wakes a *pool-worker* waiter (which helps with other jobs while it
    /// waits, so it needs the registry-routed latch).
    core: CoreLatch,
}

/// A heap-allocated job: unlike [`crate::job::StackJob`] it owns its
/// closure, so the `JobRef` in the queue keeps the job alive on its own —
/// no creator stack frame to outlive.
struct HeapJob<F: FnOnce() + Send> {
    f: F,
}

impl<F: FnOnce() + Send> HeapJob<F> {
    /// Erase a boxed job into a queueable [`JobRef`].
    ///
    /// Safety contract: the returned `JobRef` owns the allocation; it must
    /// be executed exactly once (the deque/injector protocols guarantee
    /// that), and execution reclaims the box.
    fn into_job_ref(self: Box<Self>) -> JobRef {
        let ptr = Box::into_raw(self);
        // SAFETY: `ptr` stays valid until `execute` reclaims it; the queue
        // protocols deliver the JobRef to exactly one executor.
        unsafe { JobRef::new(ptr) }
    }
}

impl<F: FnOnce() + Send> Job for HeapJob<F> {
    // SAFETY: contract inherited from `Job::execute`; `this` came from
    // `Box::into_raw` in `into_job_ref` and is executed exactly once, so
    // reclaiming the box here is sound and leak-free.
    unsafe fn execute(this: *const Self) {
        let job = Box::from_raw(this as *mut Self);
        (job.f)();
    }
}

/// Handle to a task queued by [`spawn_task`]; redeem it with
/// [`Task::wait`].
pub struct Task<T> {
    inner: Inner<T>,
}

enum Inner<T> {
    /// The closure already ran inline (sequential mode).
    Ready(Option<std::thread::Result<T>>),
    /// The closure is queued on (or running in) the pool.
    Pooled(Arc<Shared<T>>),
}

impl<T: Send> Task<T> {
    /// Block until the task finishes and return its result. A panic inside
    /// the task is re-raised here with its payload intact.
    ///
    /// Called from a pool worker, the wait *helps*: this thread keeps
    /// executing other queued jobs until the task completes, so waiting on
    /// a task from inside a parallel drive cannot deadlock the pool.
    pub fn wait(self) -> T {
        let result = match self.inner {
            Inner::Ready(result) => result.expect("task result present"),
            Inner::Pooled(shared) => {
                match registry::current_worker_index() {
                    Some(index) => registry::global().wait_until(index, &shared.core),
                    None => {
                        let mut slot = shared.slot.lock().expect("task mutex");
                        while slot.is_none() {
                            slot = shared.cond.wait(slot).expect("task condvar");
                        }
                    }
                }
                shared
                    .slot
                    .lock()
                    .expect("task mutex")
                    .take()
                    .expect("task completed, result present")
            }
        };
        match result {
            Ok(value) => value,
            Err(payload) => panic::resume_unwind(payload),
        }
    }

    /// True once the task has finished (its result is ready to collect
    /// without blocking). Always true for inline (width-1) tasks.
    pub fn is_finished(&self) -> bool {
        match &self.inner {
            Inner::Ready(_) => true,
            Inner::Pooled(shared) => shared.core.probe(),
        }
    }
}

/// Queue `f` on the resident pool and return a handle to its result.
///
/// With an effective width of 1 (see [`current_num_threads`]) and no pool
/// worker context, `f` runs inline before this returns — the sequential
/// code path, byte-identical in effect, just without overlap. Otherwise
/// the job lands on the spawning worker's own deque (stealable by idle
/// siblings) or, from an external thread, in the global injector after the
/// pool has been grown to the current width.
pub fn spawn_task<T, F>(f: F) -> Task<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let worker = registry::current_worker_index();
    let width = current_num_threads();
    if worker.is_none() && width <= 1 {
        // Sequential mode: no worker may exist to ever run an injected
        // job, so run it here and now.
        return Task {
            inner: Inner::Ready(Some(panic::catch_unwind(AssertUnwindSafe(f)))),
        };
    }

    let reg = registry::global();
    let shared = Arc::new(Shared {
        slot: Mutex::new(None),
        cond: Condvar::new(),
        core: CoreLatch::new(reg),
    });
    let state = Arc::clone(&shared);
    let job = Box::new(HeapJob {
        f: move || {
            let result = panic::catch_unwind(AssertUnwindSafe(f));
            *state.slot.lock().expect("task mutex") = Some(result);
            // Order matters for the worker-waiter: the slot write above
            // happens-before the latch store it probes. External waiters
            // synchronize on the slot mutex itself.
            state.core.set();
            state.cond.notify_all();
        },
    });
    match worker {
        Some(index) => reg.push_local(index, job.into_job_ref()),
        None => {
            // Make sure someone exists to run the injected job.
            reg.ensure_workers(width);
            reg.inject(job.into_job_ref());
        }
    }
    Task {
        inner: Inner::Pooled(shared),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_one_runs_inline_on_the_calling_thread() {
        let caller = std::thread::current().id();
        let task = crate::with_num_threads(1, || spawn_task(move || std::thread::current().id()));
        assert!(task.is_finished());
        assert_eq!(task.wait(), caller);
    }

    #[test]
    fn pooled_task_returns_its_value() {
        let task = crate::with_num_threads(4, || spawn_task(|| (0..100u64).sum::<u64>()));
        assert_eq!(task.wait(), 4950);
    }

    #[test]
    fn panic_propagates_through_wait() {
        for threads in [1, 4] {
            let task =
                crate::with_num_threads(threads, || spawn_task(|| -> u32 { panic!("task boom") }));
            let err = std::panic::catch_unwind(AssertUnwindSafe(|| task.wait())).unwrap_err();
            let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
            assert_eq!(msg, "task boom", "threads={threads}");
        }
    }

    #[test]
    fn dropping_a_task_without_waiting_is_harmless() {
        let ran = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = Arc::clone(&ran);
        let task = crate::with_num_threads(2, || {
            spawn_task(move || flag.store(true, std::sync::atomic::Ordering::SeqCst))
        });
        drop(task);
        // The job still runs eventually; don't spin forever if it broke.
        for _ in 0..500 {
            if ran.load(std::sync::atomic::Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        panic!("detached task never ran");
    }
}
