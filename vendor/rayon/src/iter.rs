//! The `par_iter` surface: parallel iterator traits and adapters.
//!
//! This is an API subset of real rayon's `rayon::iter`, shaped so that the
//! workspace's call sites (`par_iter().map(..).collect()`,
//! `par_iter().flat_map(..).collect()`, `sum`, `for_each`) compile against
//! either crate. Unlike real rayon the chain is driven by the resident
//! work-stealing pool's ordered drive in [`crate::pool`], which guarantees
//! that `collect` returns items in **input order** at any thread count and
//! nesting depth.

use crate::pool::run_ordered;

/// `&self` parallel iteration over a slice-backed container.
pub trait IntoParallelRefIterator<'data> {
    /// The element type (`&'data T`).
    type Item: Send + 'data;
    /// The parallel iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Iterate in parallel; results of downstream `collect`s keep the
    /// container's order.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = ParIter<'data, T>;

    fn par_iter(&'data self) -> Self::Iter {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = ParIter<'data, T>;

    fn par_iter(&'data self) -> Self::Iter {
        ParIter { items: self }
    }
}

/// A parallel iterator: a composable recipe for producing the items of
/// index `0..len`, evaluated on the pool only by the consuming methods
/// ([`collect`](ParallelIterator::collect), [`sum`](ParallelIterator::sum),
/// [`for_each`](ParallelIterator::for_each)).
///
/// Consuming methods propagate the first worker panic to the caller, so a
/// panicking closure behaves as it would in the sequential loop (minus
/// which sibling items were already evaluated).
pub trait ParallelIterator: Sized + Sync {
    /// The element type.
    type Item: Send;

    /// Number of input positions.
    #[doc(hidden)]
    fn p_len(&self) -> usize;

    /// Evaluate input position `index`, appending produced items to `out`.
    #[doc(hidden)]
    fn p_fill(&self, index: usize, out: &mut Vec<Self::Item>);

    /// Map each item through `op`.
    fn map<R, F>(self, op: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, op }
    }

    /// Map each item to an iterable and flatten, preserving order.
    fn flat_map<I, F>(self, op: F) -> FlatMap<Self, F>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(Self::Item) -> I + Sync,
    {
        FlatMap { base: self, op }
    }

    /// Run `op` on every item (no ordering is observable, but every item
    /// runs exactly once).
    fn for_each<F>(self, op: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        self.map(op).drive();
    }

    /// Sum the items in input order.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.drive().into_iter().sum()
    }

    /// Evaluate on the pool and collect in input order.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.drive().into_iter().collect()
    }

    /// Evaluate the chain on the pool, returning items in input order.
    #[doc(hidden)]
    fn drive(self) -> Vec<Self::Item> {
        run_ordered(self.p_len(), |i, out| self.p_fill(i, out))
    }
}

/// Parallel iterator over `&'data [T]` (the entry point).
pub struct ParIter<'data, T: Sync> {
    items: &'data [T],
}

impl<'data, T: Sync> ParallelIterator for ParIter<'data, T> {
    type Item = &'data T;

    fn p_len(&self) -> usize {
        self.items.len()
    }

    fn p_fill(&self, index: usize, out: &mut Vec<Self::Item>) {
        out.push(&self.items[index]);
    }
}

/// Result of [`ParallelIterator::map`].
pub struct Map<P, F> {
    base: P,
    op: F,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync,
{
    type Item = R;

    fn p_len(&self) -> usize {
        self.base.p_len()
    }

    fn p_fill(&self, index: usize, out: &mut Vec<R>) {
        let mut inner = Vec::with_capacity(1);
        self.base.p_fill(index, &mut inner);
        out.extend(inner.into_iter().map(&self.op));
    }
}

/// Result of [`ParallelIterator::flat_map`].
pub struct FlatMap<P, F> {
    base: P,
    op: F,
}

impl<P, I, F> ParallelIterator for FlatMap<P, F>
where
    P: ParallelIterator,
    I: IntoIterator,
    I::Item: Send,
    F: Fn(P::Item) -> I + Sync,
{
    type Item = I::Item;

    fn p_len(&self) -> usize {
        self.base.p_len()
    }

    fn p_fill(&self, index: usize, out: &mut Vec<I::Item>) {
        let mut inner = Vec::with_capacity(1);
        self.base.p_fill(index, &mut inner);
        out.extend(inner.into_iter().flat_map(&self.op));
    }
}
