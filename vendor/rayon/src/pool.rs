//! Pool sizing and the scoped-thread chunk-dealing executor.
//!
//! There is no resident pool: each top-level parallel drive spawns scoped
//! worker threads ([`std::thread::scope`]), which keeps the crate
//! dependency-free and makes every borrow a plain lifetime — no `Arc`, no
//! channels. Workers *deal* themselves chunks of the index space from a
//! shared atomic cursor, so an early-finishing worker immediately picks up
//! the next unclaimed chunk (the load-balancing half of work-stealing
//! without per-deque theft). Results are tagged with their input index and
//! re-sorted before they are returned, which is what makes the executor
//! deterministic: the output order — and therefore anything folded from it
//! — is identical at any thread count.
//!
//! Thread-count resolution, most specific wins:
//! 1. a [`with_num_threads`] scope on the calling thread,
//! 2. the process-wide [`set_num_threads`] value (the CLI's `--jobs`),
//! 3. the `RISA_THREADS` environment variable (read once, cached),
//! 4. [`std::thread::available_parallelism`].

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Process-wide override set by [`set_num_threads`]; 0 = unset.
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Calling-thread override installed by [`with_num_threads`]; 0 = unset.
    static LOCAL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// `RISA_THREADS` parsed once; 0 = absent or unparsable.
fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("RISA_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0)
    })
}

/// The number of worker threads a parallel drive started now would use.
pub fn current_num_threads() -> usize {
    let local = LOCAL_THREADS.with(Cell::get);
    if local != 0 {
        return local;
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global != 0 {
        return global;
    }
    let env = env_threads();
    if env != 0 {
        return env;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Set the process-wide thread count (the CLI's `--jobs` lands here).
/// Values are clamped to at least 1; results are unaffected either way —
/// only wall-clock time changes.
pub fn set_num_threads(n: usize) {
    GLOBAL_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Run `f` with the pool pinned to `n` threads **on this thread only**,
/// restoring the previous setting afterwards (panic-safe). This is the
/// test-friendly override: concurrent tests in the same process don't see
/// each other's pins.
pub fn with_num_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL_THREADS.with(|c| c.set(self.0));
        }
    }
    let prev = LOCAL_THREADS.with(|c| {
        let prev = c.get();
        c.set(n.max(1));
        prev
    });
    let _restore = Restore(prev);
    f()
}

/// Evaluate `fill(i, …)` for every `i < len` and return the produced items
/// in input-index order.
///
/// With one thread (or one item) this degenerates to the plain sequential
/// loop — `RISA_THREADS=1` exercises exactly the pre-pool code path.
/// Otherwise workers claim chunks from an atomic cursor and buffer
/// `(index, items)` pairs locally; the buffers are merged and sorted by
/// index after the scope joins.
///
/// Panics: if any `fill` call panics, the panic is re-raised on the caller
/// once all workers have stopped (remaining chunks may or may not have
/// been processed, but no partial result escapes).
pub(crate) fn run_ordered<T, F>(len: usize, fill: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut Vec<T>) + Sync,
{
    let width = current_num_threads();
    let threads = width.min(len);
    if threads <= 1 {
        let mut out = Vec::new();
        for i in 0..len {
            fill(i, &mut out);
        }
        return out;
    }

    // Small chunks keep the deal balanced when per-item cost is skewed
    // (whole simulation runs); the clamp keeps cursor traffic negligible
    // when items are tiny and plentiful.
    let chunk = (len / (threads * 8)).clamp(1, 1024);
    let cursor = AtomicUsize::new(0);
    let fill = &fill;

    let mut tagged: Vec<(usize, Vec<T>)> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                let cursor = &cursor;
                // Workers inherit the caller's effective width (a fresh
                // thread's local pin is unset), so a nested drive inside
                // `fill` honours the caller's `with_num_threads` scope.
                s.spawn(move || {
                    with_num_threads(width, || {
                        let mut local: Vec<(usize, Vec<T>)> = Vec::new();
                        loop {
                            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                            if start >= len {
                                break;
                            }
                            for i in start..(start + chunk).min(len) {
                                let mut items = Vec::new();
                                fill(i, &mut items);
                                local.push((i, items));
                            }
                        }
                        local
                    })
                })
            })
            .collect();
        let mut merged = Vec::with_capacity(len);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for worker in workers {
            match worker.join() {
                Ok(local) => merged.extend(local),
                Err(payload) => panic = Some(payload),
            }
        }
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
        merged
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().flat_map(|(_, items)| items).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_order_local_beats_global() {
        // A thread-local pin wins over the global setting and is restored
        // on exit, even across nesting.
        with_num_threads(3, || {
            assert_eq!(current_num_threads(), 3);
            with_num_threads(5, || assert_eq!(current_num_threads(), 5));
            assert_eq!(current_num_threads(), 3);
        });
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn zero_is_clamped() {
        with_num_threads(0, || assert_eq!(current_num_threads(), 1));
    }

    #[test]
    fn run_ordered_is_order_preserving_at_any_width() {
        let n = 1000;
        let expect: Vec<usize> = (0..n).map(|i| i * i).collect();
        for threads in [1, 2, 4, 7] {
            let got = with_num_threads(threads, || {
                run_ordered(n, |i, out: &mut Vec<usize>| out.push(i * i))
            });
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn run_ordered_handles_empty_and_tiny_inputs() {
        with_num_threads(4, || {
            assert_eq!(run_ordered(0, |_, _: &mut Vec<u8>| unreachable!()), []);
            assert_eq!(run_ordered(1, |i, out: &mut Vec<usize>| out.push(i)), [0]);
        });
    }

    #[test]
    fn worker_panic_reaches_the_caller() {
        let result = std::panic::catch_unwind(|| {
            with_num_threads(4, || {
                run_ordered(64, |i, out: &mut Vec<usize>| {
                    assert!(i != 13, "boom");
                    out.push(i);
                })
            })
        });
        assert!(result.is_err());
    }
}
