//! Pool sizing and the ordered parallel drive on the resident pool.
//!
//! As of the resident-pool rewrite there is exactly one pool per
//! process, created lazily on the first parallel drive and kept parked
//! between drives (see the `registry` module internals — workers are
//! never re-spawned; [`total_worker_spawns`] proves it). A drive splits its
//! index space recursively with [`crate::join`] down to a grain of a
//! few indices, and every leaf writes into its own pre-carved slice of
//! the output slots, so the result is assembled **in input-index order
//! by construction** — the executor stays byte-for-byte deterministic
//! at any thread count, nested or not.
//!
//! Thread-count resolution, most specific wins:
//! 1. a [`with_num_threads`] scope on the calling thread,
//! 2. the process-wide [`set_num_threads`] value (the CLI's `--jobs`),
//! 3. the `RISA_THREADS` environment variable (read once, cached),
//! 4. [`std::thread::available_parallelism`].
//!
//! The resolved width of a drive controls how many resident workers the
//! registry guarantees exist, how finely the drive's index space is
//! split, and what [`current_num_threads`] reports inside the drive's
//! closures. It does **not** evict other drives: when several drives
//! with different widths overlap, an idle resident worker may help any
//! of them — that only moves wall-clock time, never a result.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::job::{LockLatch, StackJob};
use crate::registry;

/// Process-wide override set by [`set_num_threads`]; 0 = unset.
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Calling-thread override installed by [`with_num_threads`]; 0 = unset.
    static LOCAL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// `RISA_THREADS` parsed once; 0 = absent or unparsable.
fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("RISA_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0)
    })
}

/// The width a parallel drive started now would use.
pub fn current_num_threads() -> usize {
    let local = LOCAL_THREADS.with(Cell::get);
    if local != 0 {
        return local;
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global != 0 {
        return global;
    }
    let env = env_threads();
    if env != 0 {
        return env;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Set the process-wide thread count (the CLI's `--jobs` lands here).
/// Values are clamped to at least 1; results are unaffected either way —
/// only wall-clock time changes.
///
/// Resident-pool semantics (asserted by `tests/lifecycle.rs`): the value
/// applies to **subsequent drives**. Growing the width makes the next
/// drive lazily spawn the missing workers; shrinking it narrows future
/// drives (their splitting and reported [`current_num_threads`]) but
/// never tears down already-resident workers — the pool only grows.
pub fn set_num_threads(n: usize) {
    GLOBAL_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Run `f` with the pool pinned to `n` threads **on this thread only**,
/// restoring the previous setting afterwards (panic-safe). This is the
/// test-friendly override: concurrent tests in the same process don't see
/// each other's pins, even while the resident pool is live on other
/// threads.
pub fn with_num_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL_THREADS.with(|c| c.set(self.0));
        }
    }
    let prev = LOCAL_THREADS.with(|c| {
        let prev = c.get();
        c.set(n.max(1));
        prev
    });
    let _restore = Restore(prev);
    f()
}

/// Pre-spawn the resident workers the current width calls for, so the
/// first timed drive of a bench (or the first cell of a CLI sweep) does
/// not pay the one-off thread-spawn cost inside its measurement.
/// Idempotent and cheap once the pool is warm.
pub fn warm_up() {
    let width = current_num_threads();
    if width > 1 {
        registry::global().ensure_workers(width);
    }
}

/// Total pool workers ever spawned by this process (monotone). Equal to
/// [`resident_workers`] because resident workers never exit; the
/// lifecycle tests assert the counter stays flat across repeated drives
/// — the "workers are reused, not re-spawned" contract.
pub fn total_worker_spawns() -> usize {
    registry::global().spawn_count()
}

/// Workers currently resident (parked or running). The pool only grows:
/// this is the widest width any drive has needed so far.
pub fn resident_workers() -> usize {
    registry::global().spawn_count()
}

/// Evaluate `fill(i, …)` for every `i < len` and return the produced items
/// in input-index order.
///
/// With one thread (or one item) this degenerates to the plain sequential
/// loop — `RISA_THREADS=1` exercises exactly the pre-pool code path.
/// Otherwise the index space is split recursively at [`crate::join`]
/// points down to `grain` indices per leaf; each leaf fills its own
/// disjoint sub-slice of the output slots, so reassembly is order-exact
/// without any post-hoc sort. Called on a pool worker (a nested drive),
/// the split runs directly on that worker's deque and sibling workers
/// steal into it; called from an external thread, the whole split is
/// injected as one root job and the caller blocks until the pool
/// finishes it.
///
/// Panics: if any `fill` call panics, the panic is re-raised on the
/// caller once the drive has come to rest (remaining leaves may or may
/// not have run, but no partial result escapes).
pub(crate) fn run_ordered<T, F>(len: usize, fill: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut Vec<T>) + Sync,
{
    let width = current_num_threads();
    if width.min(len) <= 1 {
        let mut out = Vec::new();
        for i in 0..len {
            fill(i, &mut out);
        }
        return out;
    }

    // Small leaves keep the split balanced when per-item cost is skewed
    // (whole simulation runs); the clamp keeps deque traffic negligible
    // when items are tiny and plentiful. Split by the *executing* width
    // (capped at MAX_WORKERS) — an absurd `--jobs`/`RISA_THREADS` value
    // is still reported verbatim but must not overflow the arithmetic.
    let split_width = width.min(registry::MAX_WORKERS);
    let grain = (len / (split_width * 8)).clamp(1, 1024);
    let mut slots: Vec<Option<Vec<T>>> = std::iter::repeat_with(|| None).take(len).collect();

    let reg = registry::global();
    reg.ensure_workers(width);
    if registry::current_worker_index().is_some() {
        // Nested drive: this worker participates directly; its split
        // jobs land on its own deque where siblings steal them.
        split_fill(0, &mut slots, &fill, grain, width);
    } else {
        // External caller: inject the whole drive as one root job and
        // block until a worker (and its thieves) finish it.
        let slots_ref = &mut slots;
        let fill_ref = &fill;
        let job = StackJob::new(
            move || split_fill(0, slots_ref, fill_ref, grain, width),
            LockLatch::new(),
        );
        // SAFETY: `job` lives on this frame and we wait on its latch
        // below before touching `slots` again or returning.
        let job_ref = unsafe { job.as_job_ref() };
        reg.inject(job_ref);
        job.latch().wait();
        // SAFETY: the latch opened, so the worker's result write (and
        // every slot write) happens-before this read.
        if let Err(payload) = unsafe { job.take_result() } {
            std::panic::resume_unwind(payload);
        }
    }

    slots
        .into_iter()
        .flat_map(|slot| slot.expect("drive completed, every slot filled"))
        .collect()
}

/// Recursive half-splitting at `join` points. Each leaf owns a disjoint
/// `&mut` sub-slice of the slots (carved by `split_at_mut`), which is
/// what makes the parallel writes safe *and* input-ordered for free.
/// Leaves run under the drive's width pin so closures — and any nested
/// drive they start — observe the caller's effective width.
fn split_fill<T, F>(base: usize, slots: &mut [Option<Vec<T>>], fill: &F, grain: usize, width: usize)
where
    T: Send,
    F: Fn(usize, &mut Vec<T>) + Sync,
{
    if slots.len() <= grain {
        with_num_threads(width, || {
            for (offset, slot) in slots.iter_mut().enumerate() {
                let mut items = Vec::new();
                fill(base + offset, &mut items);
                *slot = Some(items);
            }
        });
        return;
    }
    let mid = slots.len() / 2;
    let (lo, hi) = slots.split_at_mut(mid);
    crate::registry::join(
        || split_fill(base, lo, fill, grain, width),
        || split_fill(base + mid, hi, fill, grain, width),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_order_local_beats_global() {
        // A thread-local pin wins over the global setting and is restored
        // on exit, even across nesting.
        with_num_threads(3, || {
            assert_eq!(current_num_threads(), 3);
            with_num_threads(5, || assert_eq!(current_num_threads(), 5));
            assert_eq!(current_num_threads(), 3);
        });
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn zero_is_clamped() {
        with_num_threads(0, || assert_eq!(current_num_threads(), 1));
    }

    #[test]
    fn run_ordered_is_order_preserving_at_any_width() {
        let n = 1000;
        let expect: Vec<usize> = (0..n).map(|i| i * i).collect();
        for threads in [1, 2, 4, 7] {
            let got = with_num_threads(threads, || {
                run_ordered(n, |i, out: &mut Vec<usize>| out.push(i * i))
            });
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn run_ordered_handles_empty_and_tiny_inputs() {
        with_num_threads(4, || {
            assert_eq!(run_ordered(0, |_, _: &mut Vec<u8>| unreachable!()), []);
            assert_eq!(run_ordered(1, |i, out: &mut Vec<usize>| out.push(i)), [0]);
        });
    }

    #[test]
    fn worker_panic_reaches_the_caller() {
        let result = std::panic::catch_unwind(|| {
            with_num_threads(4, || {
                run_ordered(64, |i, out: &mut Vec<usize>| {
                    assert!(i != 13, "boom");
                    out.push(i);
                })
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn warm_up_spawns_once_and_is_idempotent() {
        with_num_threads(4, || {
            warm_up();
            let spawned = total_worker_spawns();
            assert!(spawned >= 4);
            warm_up();
            assert_eq!(total_worker_spawns(), spawned);
            assert_eq!(resident_workers(), spawned);
        });
    }

    #[test]
    fn join_off_pool_is_sequential_and_correct() {
        // An external thread has no deque; join degenerates to calling
        // both closures in order.
        let (a, b) = crate::registry::join(|| 2 * 3, || "ok");
        assert_eq!((a, b), (6, "ok"));
    }
}
