//! Offline stand-in for `rayon` — with a resident work-stealing pool.
//!
//! The workspace vendors API-subset stand-ins so it builds without a
//! network. Through PR 1 this crate's `par_iter()` simply returned the
//! sequential iterator; PR 2 made it a scoped-thread chunk-dealing
//! executor that re-spawned its workers on every drive; it now runs on a
//! **resident work-stealing pool**: workers are spawned lazily on first
//! use, park between drives, and each owns a chunk deque with LIFO
//! self-pop and FIFO steal fed through [`join`] split points (see
//! [`pool`] and the `registry`/`deque` internals). The calling surface
//! is unchanged — `jobs.par_iter().map(run_one).collect()` — but nested
//! drives (a parallel experiment matrix whose cells generate sharded
//! traces in parallel) now *subdivide* onto the same workers instead of
//! serializing or re-spawning, and repeated fine-grained drives stop
//! paying a thread-spawn per call.
//!
//! Guarantees, in order of importance to this workspace:
//!
//! * **Determinism / order preservation** — `map`/`flat_map`/`collect`
//!   return items in input order at *any* thread count, at *any* nesting
//!   depth: every split leaf writes its own pre-carved slice of the
//!   output. Simulation results never depend on scheduling;
//!   `RISA_THREADS=1` and `--jobs 8` produce byte-identical reports
//!   (asserted by `crates/sim/tests/determinism.rs` and this crate's
//!   `tests/pool_props.rs` battery).
//! * **Sizing & overrides** — drives default to
//!   [`std::thread::available_parallelism`]; `RISA_THREADS` overrides it
//!   per process, [`set_num_threads`] (the CLI's `--jobs`) overrides that,
//!   and [`with_num_threads`] pins the count for one closure on the
//!   calling thread (used by tests). The pool itself only grows — to the
//!   widest width any drive has asked for — and never re-spawns
//!   ([`total_worker_spawns`] is the test hook; `tests/lifecycle.rs`
//!   pins the semantics).
//! * **Deadlock freedom for nested drives** — a frame waiting on a
//!   stolen piece *helps*: it keeps executing queued jobs (including the
//!   inner drive's own leaves) until its latch opens.
//! * **Panic propagation** — a panic in a worker closure is re-raised on
//!   the drive's caller with its payload intact, however deep the
//!   nesting, like real rayon.
//! * **Asynchronous tasks** — [`spawn_task`] queues a fire-and-forget
//!   job with a [`Task`] result handle (the streaming shard-prefetch
//!   primitive; see [`task`]). At width 1 it degenerates to an inline
//!   call, keeping `RISA_THREADS=1` exactly sequential.
//!
//! Swapping real rayon back in remains a manifest-only change for the
//! `prelude` and [`join`] call sites; [`set_num_threads`] /
//! [`with_num_threads`] are the only knobs that would need porting (to
//! `ThreadPoolBuilder`), and [`warm_up`] / the spawn counters would map
//! to building the global pool eagerly.

mod deque;
pub mod iter;
mod job;
pub mod pool;
mod registry;
pub mod task;

pub use pool::{
    current_num_threads, resident_workers, set_num_threads, total_worker_spawns, warm_up,
    with_num_threads,
};
pub use registry::join;
pub use task::{spawn_task, Task};

/// Drop-in for `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::with_num_threads;

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let flat: Vec<i32> = v.par_iter().flat_map(|&x| vec![x, x]).collect();
        assert_eq!(flat, vec![1, 1, 2, 2, 3, 3]);
        let slice: &[i32] = &v;
        assert_eq!(slice.par_iter().sum::<i32>(), 6);
    }

    #[test]
    fn collect_preserves_order_under_the_real_pool() {
        // Skew per-item cost so late indices finish first if workers race;
        // the collected order must still be the input order.
        let v: Vec<u64> = (0..512).collect();
        let expect: Vec<u64> = v.iter().map(|&x| x * 3 + 1).collect();
        for threads in [2, 4, 8] {
            let got: Vec<u64> = with_num_threads(threads, || {
                v.par_iter()
                    .map(|&x| {
                        if x % 97 == 0 {
                            std::thread::sleep(std::time::Duration::from_micros(200));
                        }
                        x * 3 + 1
                    })
                    .collect()
            });
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn flat_map_preserves_order_and_multiplicity() {
        let v: Vec<u32> = (0..100).collect();
        let seq: Vec<u32> = v
            .iter()
            .flat_map(|&x| (0..x % 4).map(move |k| x + k))
            .collect();
        let par: Vec<u32> = with_num_threads(4, || {
            v.par_iter()
                .flat_map(|&x| (0..x % 4).map(move |k| x + k).collect::<Vec<u32>>())
                .collect()
        });
        assert_eq!(par, seq);
    }

    #[test]
    fn for_each_visits_every_item_once() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let v: Vec<u64> = (1..=100).collect();
        let total = AtomicU64::new(0);
        with_num_threads(4, || {
            v.par_iter().for_each(|&x| {
                total.fetch_add(x, Ordering::Relaxed);
            })
        });
        assert_eq!(total.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn workers_inherit_the_callers_pin() {
        // A nested drive inside a worker closure must honour the caller's
        // `with_num_threads` scope, not fall back to the machine default.
        let v: Vec<u32> = (0..8).collect();
        let widths: Vec<usize> = with_num_threads(2, || {
            v.par_iter().map(|_| crate::current_num_threads()).collect()
        });
        assert!(widths.iter().all(|&w| w == 2), "{widths:?}");
    }

    #[test]
    fn workers_actually_run_concurrently() {
        // The acceptance bar for the pool: wall-clock speedup. A matrix of
        // jobs that each wait 40 ms takes >= 480 ms sequentially; with 4
        // workers the waits overlap (even on a single core), so anything
        // under half the sequential time proves jobs ran concurrently.
        // Generous margins keep this stable on loaded CI machines.
        let jobs: Vec<u32> = (0..12).collect();
        let wait = std::time::Duration::from_millis(40);
        let timed = |threads: usize| {
            let t0 = std::time::Instant::now();
            let done: Vec<u32> = with_num_threads(threads, || {
                jobs.par_iter()
                    .map(|&j| {
                        std::thread::sleep(wait);
                        j
                    })
                    .collect()
            });
            assert_eq!(done, jobs);
            t0.elapsed()
        };
        let sequential = timed(1);
        let parallel = timed(4);
        assert!(sequential >= wait * 12, "sequential path must not overlap");
        assert!(
            parallel * 2 < sequential,
            "4 workers must beat 2x over sequential: {parallel:?} vs {sequential:?}"
        );
    }

    #[test]
    fn closure_panic_propagates_to_the_caller() {
        let v: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            with_num_threads(4, || {
                v.par_iter()
                    .map(|&x| if x == 33 { panic!("bad item") } else { x })
                    .collect::<Vec<u32>>()
            })
        });
        assert!(result.is_err());
    }
}
