//! Offline stand-in for `rayon`.
//!
//! `par_iter()` returns the ordinary sequential iterator, so all the
//! downstream `map`/`flat_map`/`collect` chains compile and behave
//! identically (and deterministically) — just without the parallelism,
//! which this workspace only uses as a convenience.

/// Drop-in for `rayon::prelude`.
pub mod prelude {
    /// `&self` parallel iteration (sequential here).
    pub trait IntoParallelRefIterator<'data> {
        /// The iterator type produced.
        type Iter: Iterator;

        /// Iterate "in parallel" (sequentially in this stand-in).
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let flat: Vec<i32> = v.par_iter().flat_map(|&x| vec![x, x]).collect();
        assert_eq!(flat, vec![1, 1, 2, 2, 3, 3]);
        let slice: &[i32] = &v;
        assert_eq!(slice.par_iter().sum::<i32>(), 6);
    }
}
