//! Type-erased jobs and completion latches — the unsafe core of the
//! resident pool.
//!
//! A *job* is a closure living on some caller's stack, referenced from a
//! worker deque or the global injector through a type-erased [`JobRef`]
//! (a raw pointer plus an `execute` shim). The erasure is what lets a
//! resident `'static` worker run a closure that borrows its caller's
//! stack: the soundness contract, upheld by every creation site, is that
//! **the creator keeps the job alive until its latch opens** — it either
//! pops the job back off its own deque (the LIFO fast path of
//! [`crate::join`]) or blocks/helps until the executing thief sets the
//! latch. No `JobRef` outlives its [`StackJob`].
//!
//! Panics never cross the erased boundary raw: [`StackJob::execute`]
//! catches the unwind, parks the payload in the result slot, and opens
//! the latch; the waiting creator re-raises it with
//! [`std::panic::resume_unwind`], so a panic message survives the trip
//! through the pool intact.

use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};

use crate::registry::Registry;

/// Something a [`StackJob`] can signal completion on.
pub(crate) trait Latch {
    /// Mark the job complete and wake whoever is waiting on it.
    fn set(&self);
}

/// A latch waited on by a **pool worker** while it keeps helping with
/// other jobs: a plain atomic flag, with the wake routed through the
/// registry's sleep generation so parked helpers notice promptly.
pub(crate) struct CoreLatch {
    opened: AtomicBool,
    registry: &'static Registry,
}

impl CoreLatch {
    pub(crate) fn new(registry: &'static Registry) -> CoreLatch {
        CoreLatch {
            opened: AtomicBool::new(false),
            registry,
        }
    }

    /// Has the latch been set? (`SeqCst` pairs with the sleeper counter —
    /// see `Registry::notify` — so a set can never race past a parking
    /// waiter.)
    pub(crate) fn probe(&self) -> bool {
        self.opened.load(Ordering::SeqCst)
    }
}

impl Latch for CoreLatch {
    fn set(&self) {
        self.opened.store(true, Ordering::SeqCst);
        self.registry.notify_latch();
    }
}

/// A latch waited on by an **external caller** (a thread that is not a
/// pool worker and therefore cannot help): an ordinary mutex + condvar
/// pair, blocking until a worker finishes the injected root job.
pub(crate) struct LockLatch {
    opened: Mutex<bool>,
    cond: Condvar,
}

impl LockLatch {
    pub(crate) fn new() -> LockLatch {
        LockLatch {
            opened: Mutex::new(false),
            cond: Condvar::new(),
        }
    }

    /// Block the calling thread until the latch opens.
    pub(crate) fn wait(&self) {
        let mut opened = self.opened.lock().expect("latch mutex");
        while !*opened {
            opened = self.cond.wait(opened).expect("latch condvar");
        }
    }
}

impl Latch for LockLatch {
    fn set(&self) {
        *self.opened.lock().expect("latch mutex") = true;
        self.cond.notify_all();
    }
}

/// Internal trait of executable, type-erasable jobs.
pub(crate) trait Job {
    /// Execute the job behind the erased pointer.
    ///
    /// # Safety
    /// `this` must point to a live job that has not been executed yet,
    /// and at most one thread may ever call this for a given job.
    unsafe fn execute(this: *const Self);
}

/// A type-erased, `Send`able handle to a job owned by some stack frame.
pub(crate) struct JobRef {
    pointer: *const (),
    execute_fn: unsafe fn(*const ()),
}

// SAFETY: a JobRef is only ever executed once, and the pointee is kept
// alive by its creator until the job's latch opens (the deque/injector
// protocols in `registry.rs` guarantee execute-once; the creators in
// `join`/`run_ordered` guarantee liveness).
unsafe impl Send for JobRef {}

impl JobRef {
    /// Erase a concrete job.
    ///
    /// # Safety
    /// The caller must keep `data` alive and un-moved until the job has
    /// been executed (or the `JobRef` provably dropped unexecuted).
    pub(crate) unsafe fn new<T: Job>(data: *const T) -> JobRef {
        unsafe fn execute_shim<T: Job>(pointer: *const ()) {
            T::execute(pointer as *const T)
        }
        JobRef {
            pointer: data as *const (),
            execute_fn: execute_shim::<T>,
        }
    }

    /// Identity of the underlying job (used by the LIFO pop-back check).
    pub(crate) fn id(&self) -> *const () {
        self.pointer
    }

    /// Run the job.
    ///
    /// # Safety
    /// See [`Job::execute`]; consuming `self` enforces at most one call
    /// per `JobRef`, and the deque protocols ensure each job yields at
    /// most one `JobRef` to an executor.
    pub(crate) unsafe fn execute(self) {
        (self.execute_fn)(self.pointer)
    }
}

/// A job allocated on the creator's stack: the closure, a slot for its
/// result (or panic payload), and the latch the creator waits on.
pub(crate) struct StackJob<L, F, R>
where
    L: Latch,
    F: FnOnce() -> R + Send,
    R: Send,
{
    latch: L,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
}

impl<L, F, R> StackJob<L, F, R>
where
    L: Latch,
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(func: F, latch: L) -> StackJob<L, F, R> {
        StackJob {
            latch,
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(None),
        }
    }

    pub(crate) fn latch(&self) -> &L {
        &self.latch
    }

    /// Erase this job for queueing.
    ///
    /// # Safety
    /// The caller must keep `self` alive until the latch opens or the
    /// returned `JobRef` is popped back unexecuted.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        JobRef::new(self)
    }

    /// Run the closure on the creating thread (the LIFO pop-back path,
    /// when the job was never stolen). Panics propagate directly, as in
    /// the plain sequential call.
    pub(crate) fn run_inline(&self) -> R {
        let func = unsafe { (*self.func.get()).take() }.expect("job already executed");
        func()
    }

    /// Take the result stored by a thief.
    ///
    /// # Safety
    /// Only call after the latch has opened (which orders the thief's
    /// result write before this read).
    pub(crate) unsafe fn take_result(&self) -> std::thread::Result<R> {
        (*self.result.get()).take().expect("job result missing")
    }
}

impl<L, F, R> Job for StackJob<L, F, R>
where
    L: Latch,
    F: FnOnce() -> R + Send,
    R: Send,
{
    // SAFETY: contract inherited from `Job::execute` — `this` is live and
    // unexecuted, and exactly one thread calls this, so the UnsafeCell
    // accesses below are unaliased.
    unsafe fn execute(this: *const Self) {
        let this = &*this;
        let func = (*this.func.get()).take().expect("job executed twice");
        let result = panic::catch_unwind(AssertUnwindSafe(func));
        *this.result.get() = Some(result);
        this.latch.set();
    }
}
