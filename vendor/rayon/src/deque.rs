//! Per-worker chunk deques and the global injector.
//!
//! Each resident worker owns one [`WorkerDeque`]. Only the owner pushes,
//! and it pushes and pops at the **back** (LIFO), so a worker descends
//! into the most recently split — smallest, cache-hottest — piece of its
//! own work. Thieves take from the **front** (FIFO), so a steal grabs
//! the *oldest* entry: the biggest still-unsplit subtree, which the
//! thief then subdivides on its own deque. That asymmetry is the whole
//! work-stealing story; the LIFO discipline additionally guarantees that
//! when a [`crate::join`] caller finishes its first closure, the back of
//! its deque is its own second closure if and only if nobody stole it
//! ([`WorkerDeque::pop_back_if`]).
//!
//! External (non-worker) callers cannot own a deque, so their root jobs
//! go through the shared [`Injector`], a plain FIFO that idle workers
//! drain after their own deque and steal attempts come up empty.
//!
//! Both structures are mutex-guarded `VecDeque`s rather than lock-free
//! Chase–Lev deques: jobs here are chunk-granular (leaves of a split
//! tree, whole simulation cells), so queue traffic is orders of
//! magnitude below per-item rates and an uncontended mutex is ~20 ns —
//! invisible next to the jobs themselves, and immune to the ABA/fence
//! subtleties a hand-rolled lock-free deque would import.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::job::JobRef;

/// A single worker's double-ended job queue.
pub(crate) struct WorkerDeque {
    jobs: Mutex<VecDeque<JobRef>>,
}

impl WorkerDeque {
    pub(crate) fn new() -> WorkerDeque {
        WorkerDeque {
            jobs: Mutex::new(VecDeque::new()),
        }
    }

    /// Owner-side push (back / LIFO end).
    pub(crate) fn push_back(&self, job: JobRef) {
        self.jobs.lock().expect("deque mutex").push_back(job);
    }

    /// Owner-side pop (back / LIFO end): the newest job, i.e. the
    /// smallest split this worker produced.
    pub(crate) fn pop_back(&self) -> Option<JobRef> {
        self.jobs.lock().expect("deque mutex").pop_back()
    }

    /// Owner-side conditional pop: remove and report `true` only if the
    /// back entry is exactly the job identified by `id`. Used by `join`
    /// to reclaim its second closure — if the id does not match, the job
    /// was stolen and the caller must wait on its latch instead.
    pub(crate) fn pop_back_if(&self, id: *const ()) -> bool {
        let mut jobs = self.jobs.lock().expect("deque mutex");
        if jobs.back().is_some_and(|job| job.id() == id) {
            jobs.pop_back();
            true
        } else {
            false
        }
    }

    /// Thief-side steal (front / FIFO end): the oldest job, i.e. the
    /// largest still-unsplit piece of the owner's work.
    pub(crate) fn steal_front(&self) -> Option<JobRef> {
        self.jobs.lock().expect("deque mutex").pop_front()
    }
}

/// The shared FIFO external callers inject root jobs into.
pub(crate) struct Injector {
    jobs: Mutex<VecDeque<JobRef>>,
}

impl Injector {
    pub(crate) fn new() -> Injector {
        Injector {
            jobs: Mutex::new(VecDeque::new()),
        }
    }

    pub(crate) fn push(&self, job: JobRef) {
        self.jobs.lock().expect("injector mutex").push_back(job);
    }

    pub(crate) fn pop(&self) -> Option<JobRef> {
        self.jobs.lock().expect("injector mutex").pop_front()
    }
}
