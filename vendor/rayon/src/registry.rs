//! The resident worker registry and the [`join`] scheduling primitive.
//!
//! One process-wide [`Registry`] is created lazily on first parallel
//! drive and lives for the life of the process. Workers are spawned
//! lazily too — `ensure_workers(n)` grows the pool to the widest width
//! any drive has asked for and **never shrinks it**; between drives the
//! workers park on a condvar, so repeated `par_iter` calls reuse the
//! same OS threads instead of paying a spawn per drive (the
//! [`Registry::spawn_count`] counter lets tests assert exactly that).
//!
//! Scheduling is classic work-stealing:
//!
//! * a worker looking for work pops its **own deque back** (LIFO),
//!   then tries to **steal the front** (FIFO) of the other live workers'
//!   deques starting from a rotating neighbour, then drains the global
//!   [`Injector`];
//! * [`join`] pushes its second closure onto the local deque, runs the
//!   first inline, and then either pops the second straight back (not
//!   stolen — the common, allocation-free case) or *helps* — executes
//!   other pending jobs — until the thief opens the latch. Waiting
//!   workers therefore never idle while runnable work exists, which is
//!   also why nested drives cannot deadlock: the blocked frame keeps
//!   executing whatever the pool still has queued, including the inner
//!   drive's own leaves.
//!
//! Progress argument (why no configuration of nested `join`s can
//! deadlock): a join frame only waits on jobs it transitively spawned,
//! so the wait graph is a forest; any unfinished latch belongs to a job
//! that is either queued — and every waiter's help loop scans *all*
//! deques plus the injector, so it will be found — or currently running
//! strictly younger work on some worker's stack, and by induction on
//! depth that younger work finishes first.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Duration;

use crate::deque::{Injector, WorkerDeque};
use crate::job::{CoreLatch, JobRef, StackJob};

/// Hard cap on resident workers; deque slots are preallocated up to it.
/// Far above any sane width (the CLI clamps to machine-scale counts) —
/// widths beyond the cap still *report* their value and still chunk the
/// index space by it, they just execute on at most this many threads.
pub(crate) const MAX_WORKERS: usize = 128;

/// How long a parked thread sleeps before rescanning on its own, as a
/// belt-and-braces bound on any missed-wakeup window (pushes wake a
/// single sleeper, so a consumed-elsewhere wake is repaired within one
/// timeout; 10 ms of idle-rescan costs nothing measurable).
const PARK_TIMEOUT: Duration = Duration::from_millis(10);

/// Worker stacks: simulations run *inside* jobs, and a helping worker
/// can nest several of them on one stack, so be generous (virtual
/// memory only).
const WORKER_STACK_BYTES: usize = 8 * 1024 * 1024;

thread_local! {
    /// Which resident worker this thread is, if any.
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Index of the calling thread within the pool, or `None` for external
/// threads.
pub(crate) fn current_worker_index() -> Option<usize> {
    WORKER_INDEX.with(Cell::get)
}

/// The process-wide resident pool state.
pub(crate) struct Registry {
    /// Preallocated per-worker deques; `live` of them have threads.
    deques: Vec<WorkerDeque>,
    /// FIFO for root jobs injected by external (non-worker) threads.
    injector: Injector,
    /// Number of workers spawned so far. Monotone: workers never exit,
    /// so this doubles as the lifetime spawn counter.
    live: AtomicUsize,
    /// Serializes pool growth.
    spawn_lock: Mutex<()>,
    /// Threads currently parked (or about to park) on `work_available`.
    sleepers: AtomicUsize,
    /// Wake generation: bumped on every notify so a parker that raced a
    /// push can tell the world moved and rescan.
    sleep_gen: Mutex<u64>,
    work_available: Condvar,
}

/// The lazily-created process-wide registry.
pub(crate) fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

impl Registry {
    fn new() -> Registry {
        Registry {
            deques: (0..MAX_WORKERS).map(|_| WorkerDeque::new()).collect(),
            injector: Injector::new(),
            live: AtomicUsize::new(0),
            spawn_lock: Mutex::new(()),
            sleepers: AtomicUsize::new(0),
            sleep_gen: Mutex::new(0),
            work_available: Condvar::new(),
        }
    }

    /// Total workers ever spawned == workers currently resident (they
    /// never exit). The pool-lifecycle tests assert this stays flat
    /// across repeated drives.
    pub(crate) fn spawn_count(&self) -> usize {
        self.live.load(Ordering::Acquire)
    }

    /// Grow the pool to at least `n` resident workers (capped at
    /// [`MAX_WORKERS`]); never shrinks.
    pub(crate) fn ensure_workers(&'static self, n: usize) {
        let n = n.min(MAX_WORKERS);
        if self.live.load(Ordering::Acquire) >= n {
            return;
        }
        let _guard = self.spawn_lock.lock().expect("spawn lock");
        let current = self.live.load(Ordering::Acquire);
        for index in current..n {
            std::thread::Builder::new()
                .name(format!("risa-pool-{index}"))
                .stack_size(WORKER_STACK_BYTES)
                .spawn(move || self.worker_loop(index))
                .expect("spawn resident pool worker");
        }
        if n > current {
            self.live.store(n, Ordering::Release);
        }
    }

    /// Queue a root job from an external thread and wake the pool.
    pub(crate) fn inject(&self, job: JobRef) {
        self.injector.push(job);
        self.notify(false);
    }

    /// Owner-side push onto worker `index`'s deque, waking one thief.
    pub(crate) fn push_local(&self, index: usize, job: JobRef) {
        self.deques[index].push_back(job);
        self.notify(false);
    }

    /// Wake a parked thread (or, for `all`, every parked thread) if
    /// there are any. The `SeqCst` sleeper count pairs with the park
    /// protocol (register; read generation; rescan; sleep only if the
    /// generation is unchanged): if we read zero sleepers here, the
    /// parker had not yet registered, so its subsequent rescan observes
    /// whatever we published before calling `notify`.
    ///
    /// Pushes wake **one** sleeper — one new job needs one thief, and a
    /// narrow drive over a wide warm pool must not stampede every parked
    /// worker per split. Latch openings wake **all** sleepers: the one
    /// waiter that cares is some specific thread, and the condvar cannot
    /// target it; everyone else re-parks after a cheap generation check.
    /// The park timeout bounds any wake that still slips through.
    fn notify(&self, all: bool) {
        if self.sleepers.load(Ordering::SeqCst) == 0 {
            return;
        }
        let mut generation = self.sleep_gen.lock().expect("sleep mutex");
        *generation = generation.wrapping_add(1);
        if all {
            self.work_available.notify_all();
        } else {
            self.work_available.notify_one();
        }
    }

    /// Latch-opening wake: see [`Registry::notify`].
    pub(crate) fn notify_latch(&self) {
        self.notify(true);
    }

    /// Find one runnable job: own deque back (LIFO), then steal the
    /// other live workers' fronts (FIFO, rotating start), then the
    /// global injector.
    fn find_job(&self, index: usize) -> Option<JobRef> {
        if let Some(job) = self.deques[index].pop_back() {
            return Some(job);
        }
        let live = self.live.load(Ordering::Acquire);
        for offset in 1..live {
            let victim = (index + offset) % live;
            if let Some(job) = self.deques[victim].steal_front() {
                return Some(job);
            }
        }
        self.injector.pop()
    }

    /// One scheduling round for worker `index`: execute one available
    /// job, or park until work may exist (or `latch` opens).
    fn round(&'static self, index: usize, latch: Option<&CoreLatch>) {
        if let Some(job) = self.find_job(index) {
            // SAFETY: `find_job` transfers exclusive ownership of the
            // JobRef (deque pop / steal / injector pop each yield a job to
            // exactly one thread), and its creator keeps it alive until
            // the latch this execution sets.
            unsafe { job.execute() };
            return;
        }
        let opened = || latch.is_some_and(CoreLatch::probe);
        // Park protocol: register as a sleeper FIRST, then capture the
        // generation, then rescan. A push that missed our registration
        // happened before it, so the rescan sees its job; a push after
        // it sees sleepers > 0 and bumps the generation.
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let seen = *self.sleep_gen.lock().expect("sleep mutex");
        if let Some(job) = self.find_job(index) {
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            // SAFETY: as above — `find_job` hands this job to this thread
            // alone, and the creator keeps it alive until its latch opens.
            unsafe { job.execute() };
            return;
        }
        if opened() {
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        let mut generation = self.sleep_gen.lock().expect("sleep mutex");
        while *generation == seen && !opened() {
            let (next, timeout) = self
                .work_available
                .wait_timeout(generation, PARK_TIMEOUT)
                .expect("sleep condvar");
            generation = next;
            if timeout.timed_out() {
                break;
            }
        }
        drop(generation);
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Help-while-waiting: keep executing pool jobs until `latch`
    /// opens. This is what makes blocked `join` frames productive and
    /// nested drives deadlock-free.
    pub(crate) fn wait_until(&'static self, index: usize, latch: &CoreLatch) {
        while !latch.probe() {
            self.round(index, Some(latch));
        }
    }

    /// A resident worker's whole life: run jobs, park when idle, never
    /// exit. (Workers are leaked by design; process teardown reaps
    /// them. There is deliberately no shutdown protocol to get wrong.)
    fn worker_loop(&'static self, index: usize) {
        WORKER_INDEX.with(|cell| cell.set(Some(index)));
        loop {
            self.round(index, None);
        }
    }
}

/// Run `oper_a` and `oper_b`, potentially in parallel, and return both
/// results — the split point the deque scheduler subdivides work at.
///
/// On a pool worker, `oper_b` is pushed onto the worker's own deque
/// (where an idle sibling can steal it FIFO) while `oper_a` runs
/// inline; if nobody stole `oper_b`, it is popped straight back (LIFO)
/// and run inline too, so an uncontended `join` costs two mutexed deque
/// operations and no synchronization beyond that. On an external
/// thread there is no deque to split against, so the closures simply
/// run sequentially — `par_iter` drives never hit that case, because
/// their root is injected into the pool first.
///
/// If either closure panics, the panic is re-raised on the caller after
/// both closures have come to rest (a stolen `oper_b` is always waited
/// for, even when `oper_a` panicked, so no stack borrow outlives its
/// frame); when both panic, `oper_a`'s payload wins, like real rayon.
///
/// ```
/// let (a, b) = rayon::join(|| 1 + 1, || 2 + 2);
/// assert_eq!((a, b), (2, 4));
/// ```
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    match current_worker_index() {
        Some(index) => join_on_worker(index, oper_a, oper_b),
        None => {
            let ra = oper_a();
            let rb = oper_b();
            (ra, rb)
        }
    }
}

fn join_on_worker<A, B, RA, RB>(index: usize, oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let registry = global();
    let job_b = StackJob::new(oper_b, CoreLatch::new(registry));
    // SAFETY: job_b outlives the JobRef — every path below either pops
    // it back unexecuted or waits on its latch before the frame ends.
    let job_b_ref = unsafe { job_b.as_job_ref() };
    let job_b_id = job_b_ref.id();
    registry.push_local(index, job_b_ref);

    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(oper_a)) {
        Err(payload) => {
            // `oper_a` panicked. Reclaim `oper_b` before unwinding: if
            // it is still ours it simply never runs; if a thief has it,
            // wait for the thief (its result, panic or not, is dropped —
            // `oper_a`'s panic wins).
            if !registry.deques[index].pop_back_if(job_b_id) {
                registry.wait_until(index, job_b.latch());
                // SAFETY: the latch just opened, ordering the thief's
                // result write before this (discarded) read.
                let _ = unsafe { job_b.take_result() };
            }
            std::panic::resume_unwind(payload);
        }
        Ok(ra) => {
            if registry.deques[index].pop_back_if(job_b_id) {
                // Not stolen: run it here. LIFO discipline guarantees
                // the back of our deque is `job_b` iff it is still
                // queued — everything pushed during `oper_a` was popped
                // or stolen-and-awaited before `oper_a` returned.
                let rb = job_b.run_inline();
                (ra, rb)
            } else {
                registry.wait_until(index, job_b.latch());
                // SAFETY: latch opened, so the thief's write to the
                // result slot happens-before this read.
                match unsafe { job_b.take_result() } {
                    Ok(rb) => (ra, rb),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        }
    }
}
