//! Offline stand-in for the `rand` crate.
//!
//! Implements the API subset this workspace uses — `StdRng::seed_from_u64`,
//! `Rng::{gen_range, gen_bool}`, and `seq::SliceRandom::shuffle` — over a
//! [xoshiro256++](https://prng.di.unimi.it/) generator seeded through
//! SplitMix64. Everything is deterministic per seed.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose whole stream is a function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers (blanket-implemented for every [`RngCore`]).
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        next_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// A uniform `f64` in `[0, 1)` (53 random mantissa bits).
pub fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a uniform sample can be drawn from.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (uniform_u128(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (uniform_u128(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Uniform integer in `[0, span)` by widening multiplication (negligible
/// bias for the spans used here; exact for powers of two).
fn uniform_u128<R: RngCore>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    let x = rng.next_u64() as u128;
    (x * span) >> 64
}

/// The default seeded generator: xoshiro256++ with SplitMix64 expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Named re-exports matching `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;

    /// A small fast generator; here simply the same engine as [`StdRng`].
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers matching `rand::seq`.
pub mod seq {
    use crate::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Uniformly permute the slice in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 33];
        for _ in 0..2000 {
            let x = rng.gen_range(1u32..=32);
            assert!((1..=32).contains(&x));
            seen[x as usize] = true;
        }
        assert!(seen[1..=32].iter().all(|&s| s));
        for _ in 0..200 {
            let x = rng.gen_range(5u32..8);
            assert!((5..8).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        // p = 1.0 can still miss only when next_f64 returns exactly 1.0,
        // which it cannot (the mantissa is scaled into [0, 1)).
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }
}
