//! Derive macros for the vendored `serde` stand-in.
//!
//! Implemented directly over `proc_macro` token streams (no `syn`/`quote`
//! available offline). Supports the shapes this repository uses:
//!
//! * structs with named fields (honouring `#[serde(skip)]`),
//! * tuple and unit structs,
//! * enums with unit, newtype, tuple, and struct variants
//!   (externally tagged, like real serde's default).
//!
//! Generics are intentionally unsupported; deriving on a generic type
//! fails with a clear compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (the vendored trait).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

/// Derive `serde::Deserialize` (the vendored trait).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------- model --

struct Field {
    name: String,
    skip: bool,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

// --------------------------------------------------------------- parsing --

/// Does an attribute token group (the `[...]` contents) spell
/// `serde(skip)`?
fn attr_is_serde_skip(group: &proc_macro::Group) -> bool {
    let mut tokens = group.stream().into_iter();
    match (tokens.next(), tokens.next()) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip"))
        }
        _ => false,
    }
}

/// Consume leading `#[...]` attributes, reporting whether any was
/// `#[serde(skip)]`.
fn take_attrs(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> bool {
    let mut skip = false;
    while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        tokens.next();
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                skip |= attr_is_serde_skip(&g);
            }
            other => panic!("expected [...] after '#', got {other:?}"),
        }
    }
    skip
}

/// Consume a `pub` / `pub(...)` visibility prefix if present.
fn take_visibility(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

/// Skip one field's type: everything up to a top-level `,` (or the end),
/// tracking `<...>` nesting so generic argument commas don't terminate
/// early.
fn skip_type(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    let mut angle_depth = 0usize;
    let mut prev_dash = false;
    while let Some(tt) = tokens.peek() {
        match tt {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == ',' && angle_depth == 0 {
                    tokens.next();
                    return;
                }
                if c == '<' {
                    angle_depth += 1;
                } else if c == '>' && !prev_dash {
                    angle_depth = angle_depth.saturating_sub(1);
                }
                prev_dash = c == '-';
            }
            _ => prev_dash = false,
        }
        tokens.next();
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let skip = take_attrs(&mut tokens);
        take_visibility(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected field name, got {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected ':' after field '{name}', got {other:?}"),
        }
        skip_type(&mut tokens);
        fields.push(Field { name, skip });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut tokens = stream.into_iter().peekable();
    let mut count = 0;
    loop {
        take_attrs(&mut tokens);
        take_visibility(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        skip_type(&mut tokens);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        take_attrs(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected variant name, got {other:?}"),
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                tokens.next();
                Fields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                tokens.next();
                Fields::Tuple(count_tuple_fields(g))
            }
            _ => Fields::Unit,
        };
        // Consume a trailing comma (and tolerate `= discriminant`).
        while let Some(tt) = tokens.peek() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    tokens.next();
                    break;
                }
                _ => {
                    tokens.next();
                }
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    take_attrs(&mut tokens);
    take_visibility(&mut tokens);
    let keyword = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected 'struct' or 'enum', got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected a type name, got {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("the vendored serde derive does not support generic types ({name})");
    }
    let body = match keyword.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Struct(Fields::Unit),
            other => panic!("unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body for {name}, got {other:?}"),
        },
        other => panic!("cannot derive serde traits for '{other} {name}'"),
    };
    Item { name, body }
}

// --------------------------------------------------------------- codegen --

/// Expression serializing named fields (bound as `binds[i]`) into a map.
fn ser_named(fields: &[Field], binds: &[String]) -> String {
    let mut code = String::from(
        "{ let mut m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();",
    );
    for (f, bind) in fields.iter().zip(binds) {
        if f.skip {
            continue;
        }
        code.push_str(&format!(
            "m.push((::std::string::String::from(\"{name}\"), \
             ::serde::Serialize::to_value({bind})));",
            name = f.name
        ));
    }
    code.push_str("::serde::Value::Map(m) }");
    code
}

/// Expression deserializing named fields from map `src` into a `Name { .. }`
/// literal body.
fn de_named(fields: &[Field], src: &str) -> String {
    let mut code = String::new();
    for f in fields {
        if f.skip {
            code.push_str(&format!("{}: ::std::default::Default::default(),", f.name));
        } else {
            code.push_str(&format!(
                "{name}: ::serde::Deserialize::from_value(::serde::value::field({src}, \
                 \"{name}\")?)?,",
                name = f.name
            ));
        }
    }
    code
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Named(fields)) => {
            let binds: Vec<String> = fields.iter().map(|f| format!("&self.{}", f.name)).collect();
            ser_named(fields, &binds)
        }
        Body::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(","))
        }
        Body::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(\
                         ::std::string::String::from(\"{vname}\")),"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(x0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(vec![{}])", items.join(","))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => ::serde::Value::Map(vec![(\
                             ::std::string::String::from(\"{vname}\"), {inner})]),",
                            binds = binds.join(",")
                        ));
                    }
                    Fields::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let inner = ser_named(fields, &binds);
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(vec![(\
                             ::std::string::String::from(\"{vname}\"), {inner})]),",
                            binds = binds.join(",")
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Named(fields)) => {
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                de_named(fields, "v")
            )
        }
        Body::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Body::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(seq.get({i}).ok_or_else(|| \
                         ::serde::Error::new(\"tuple struct too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "{{ let seq = v.as_seq().ok_or_else(|| \
                 ::serde::Error::type_mismatch(\"sequence\", v))?;\
                 ::std::result::Result::Ok({name}({})) }}",
                items.join(",")
            )
        }
        Body::Struct(Fields::Unit) => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                    )),
                    Fields::Tuple(1) => {
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(inner)?)),"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_value(seq.get({i})\
                                     .ok_or_else(|| ::serde::Error::new(\
                                     \"tuple variant too short\"))?)?"
                                )
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{ let seq = inner.as_seq().ok_or_else(|| \
                             ::serde::Error::type_mismatch(\"sequence\", inner))?; \
                             ::std::result::Result::Ok({name}::{vname}({})) }},",
                            items.join(",")
                        ));
                    }
                    Fields::Named(fields) => {
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname} {{ {} }}),",
                            de_named(fields, "inner")
                        ));
                    }
                }
            }
            format!(
                "if let ::std::option::Option::Some(s) = v.as_str() {{\
                     return match s {{ {unit_arms} other => ::std::result::Result::Err(\
                     ::serde::Error::new(::std::format!(\"unknown variant '{{other}}'\"))) }};\
                 }}\
                 let (tag, inner) = ::serde::value::enum_tag(v)?;\
                 let _ = inner;\
                 match tag {{ {tagged_arms} other => ::std::result::Result::Err(\
                 ::serde::Error::new(::std::format!(\"unknown variant '{{other}}'\"))) }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}
