//! Offline stand-in for `serde_json`: renders the vendored serde [`Value`]
//! model to JSON text and parses it back.
//!
//! Numbers round-trip exactly: integers print as integers, floats use
//! Rust's shortest-round-trip `Display`, and the parser classifies a token
//! as float only when it contains `.`, `e`, or `E`.

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serialize `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

// --------------------------------------------------------------- writing --

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_bracketed(out, indent, depth, items, b'[', |out, item, d| {
            write_value(out, item, indent, d)
        }),
        Value::Map(entries) => {
            write_bracketed(out, indent, depth, entries, b'{', |out, (k, val), d| {
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, d);
            })
        }
    }
}

fn write_bracketed<T>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    items: &[T],
    open: u8,
    mut write_item: impl FnMut(&mut String, &T, usize),
) {
    let close = if open == b'[' { ']' } else { '}' };
    out.push(open as char);
    if items.is_empty() {
        out.push(close);
        return;
    }
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        write_item(out, item, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = f.to_string();
        out.push_str(&s);
        // Keep the token recognizably floating-point so the parser
        // reproduces a float and equality round-trips for f64 fields.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no infinities/NaN; null is serde_json's lossy default.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parsing --

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    entries.push((key, self.parse_value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("bad escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if token.is_empty() {
            return Err(Error::new(format!("expected a value at offset {start}")));
        }
        if token.contains(['.', 'e', 'E']) {
            token
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("bad float '{token}'")))
        } else {
            token
                .parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("bad integer '{token}'")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&6300.0f64).unwrap(), "6300.0");
        assert_eq!(from_str::<f64>("6300.0").unwrap(), 6300.0);
        assert_eq!(from_str::<f64>("6300").unwrap(), 6300.0);
        let x = 0.1f64 + 0.2;
        assert_eq!(from_str::<f64>(&to_string(&x).unwrap()).unwrap(), x);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "a \"quoted\" line\nwith\ttabs and \\ slashes".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>("[1, 2, 3]").unwrap(), v);
        let o: Option<u32> = None;
        assert_eq!(to_string(&o).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("5").unwrap(), Some(5));
    }

    #[test]
    fn pretty_output_indents() {
        let v = vec![1u32, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }
}
