//! Offline stand-in for `criterion`.
//!
//! Provides the surface this workspace's benches use (`Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`) backed by a simple calibrated timing loop: warm up, pick an
//! iteration count targeting a fixed measurement window, report mean
//! time/iteration. No statistics beyond that — the goal is comparable
//! relative numbers and a stable report format, not criterion's analysis.
//!
//! Set `RISA_BENCH_MS` to change the per-benchmark measurement window
//! (default 200 ms; CI can use 20 ms smoke runs).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export-compatible `black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn measurement_window() -> Duration {
    let ms = std::env::var("RISA_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(200);
    Duration::from_millis(ms.max(1))
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_ns: f64,
    window: Duration,
}

impl Bencher {
    /// Time `f`, storing the mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: run until ~10% of the window elapses,
        // counting iterations.
        let calib = self.window / 10;
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < calib {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let target_iters =
            ((self.window.as_secs_f64() * 0.9 / per_iter.max(1e-9)) as u64).clamp(1, u64::MAX);
        let start = Instant::now();
        for _ in 0..target_iters {
            black_box(f());
        }
        self.last_ns = start.elapsed().as_secs_f64() * 1e9 / target_iters as f64;
    }
}

fn report(name: &str, ns: f64) {
    let (value, unit) = if ns < 1_000.0 {
        (ns, "ns")
    } else if ns < 1_000_000.0 {
        (ns / 1_000.0, "µs")
    } else if ns < 1_000_000_000.0 {
        (ns / 1_000_000.0, "ms")
    } else {
        (ns / 1_000_000_000.0, "s")
    };
    println!("{name:<50} time: {value:>10.3} {unit}/iter");
}

/// The top-level harness handle.
pub struct Criterion {
    window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            window: measurement_window(),
        }
    }
}

impl Criterion {
    /// Accepts (and ignores) command-line configuration, like criterion.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            last_ns: 0.0,
            window: self.window,
        };
        f(&mut b);
        report(name, b.last_ns);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Print the closing summary (a no-op beyond a newline here).
    pub fn final_summary(self) {
        println!();
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.criterion.window = time;
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            last_ns: 0.0,
            window: self.criterion.window,
        };
        f(&mut b, input);
        report(&format!("{}/{id}", self.name), b.last_ns);
        self
    }

    /// Run one named benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            last_ns: 0.0,
            window: self.criterion.window,
        };
        f(&mut b);
        report(&format!("{}/{id}", self.name), b.last_ns);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_payload() {
        std::env::set_var("RISA_BENCH_MS", "5");
        let mut c = Criterion::default().configure_from_args();
        let mut count = 0u64;
        c.bench_function("noop", |b| b.iter(|| count += 1));
        assert!(count > 0);
        c.final_summary();
    }

    #[test]
    fn group_api_compiles_and_runs() {
        std::env::set_var("RISA_BENCH_MS", "5");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.bench_with_input(BenchmarkId::new("mul", 4), &4u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }
}
