//! Offline stand-in for `rand_distr`: just the exponential distribution,
//! which is all this workspace samples.

use rand::RngCore;

/// A sampleable distribution over `T`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Construction error for [`Exp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpError {
    /// The rate parameter λ must be finite and positive.
    LambdaTooSmall,
}

impl std::fmt::Display for ExpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "exponential rate must be finite and positive")
    }
}

impl std::error::Error for ExpError {}

/// The exponential distribution `Exp(λ)` with mean `1/λ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// An exponential distribution with rate `lambda`.
    pub fn new(lambda: f64) -> Result<Self, ExpError> {
        if lambda.is_finite() && lambda > 0.0 {
            Ok(Exp { lambda })
        } else {
            Err(ExpError::LambdaTooSmall)
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF on u ∈ (0, 1]: -ln(u) / λ. Using 1 - [0,1) keeps the
        // argument strictly positive, so the sample is always finite.
        let u = 1.0 - rand::next_f64(rng);
        -u.ln() / self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{SeedableRng, StdRng};

    #[test]
    fn rejects_bad_rates() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(-1.0).is_err());
        assert!(Exp::new(f64::NAN).is_err());
        assert!(Exp::new(2.5).is_ok());
    }

    #[test]
    fn sample_mean_matches_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        let exp = Exp::new(1.0 / 10.0).unwrap();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exp.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn samples_are_positive_and_varied() {
        let mut rng = StdRng::seed_from_u64(2);
        let exp = Exp::new(1.0).unwrap();
        let a = exp.sample(&mut rng);
        let b = exp.sample(&mut rng);
        assert!(a > 0.0 && b > 0.0);
        assert_ne!(a, b);
    }
}
