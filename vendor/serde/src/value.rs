//! The self-describing data model shared by the vendored `serde` and
//! `serde_json` stand-ins.

use std::fmt;

/// A serialized tree: the common shape JSON text is rendered from and
/// parsed into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also the encoding of `None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// Any integer (wide enough for `u64` and `i64` alike).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload; floats with an exact integer value qualify.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Value::Int(n) => Some(*n),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 2f64.powi(96) => Some(*f as i128),
            _ => None,
        }
    }

    /// The numeric payload as a float (integers convert losslessly enough
    /// for this repository's ranges).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The sequence payload, if any.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The map payload, if any.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Look up `key` in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Short description of the value's shape, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Fetch a required struct field out of a map value (derive-macro helper).
pub fn field<'v>(v: &'v Value, name: &str) -> Result<&'v Value, Error> {
    v.get(name)
        .ok_or_else(|| Error::new(format!("missing field '{name}' in {}", v.kind())))
}

/// Unwrap an externally-tagged enum value: a one-entry map (derive-macro
/// helper).
pub fn enum_tag(v: &Value) -> Result<(&str, &Value), Error> {
    match v.as_map() {
        Some([(tag, inner)]) => Ok((tag, inner)),
        _ => Err(Error::new(format!(
            "expected an externally tagged enum, got {}",
            v.kind()
        ))),
    }
}

/// Serialization / deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// A "wrong shape" error naming the expected type.
    pub fn type_mismatch(expected: &str, got: &Value) -> Self {
        Error::new(format!("expected {expected}, got {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}
