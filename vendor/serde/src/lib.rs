//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the minimal serialization machinery the repository needs: a
//! self-describing [`value::Value`] data model, [`Serialize`] /
//! [`Deserialize`] traits over it, and derive macros re-exported from the
//! companion `serde_derive` proc-macro crate. `serde_json` (also vendored)
//! renders `Value` to and from JSON text.
//!
//! The API intentionally mirrors the subset of real serde this repository
//! uses (`#[derive(Serialize, Deserialize)]`, `#[serde(skip)]`,
//! `serde_json::{to_string, to_string_pretty, from_str}`), so swapping the
//! real crates back in later is a manifest-only change.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Error, Value};

/// Types that can render themselves into the [`Value`] data model.
pub trait Serialize {
    /// Convert `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_int().ok_or_else(|| Error::type_mismatch(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| Error::new(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_float().ok_or_else(|| Error::type_mismatch("f64", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::type_mismatch("bool", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::type_mismatch("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::type_mismatch("char", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new("expected a single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::type_mismatch("sequence", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| Error::new(format!("expected an array of {N} elements, got {got}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let seq = v.as_seq().ok_or_else(|| Error::type_mismatch("tuple", v))?;
                let mut it = seq.iter();
                Ok(($(
                    {
                        let _ = $idx;
                        $name::from_value(it.next().ok_or_else(|| Error::new("tuple too short"))?)?
                    },
                )+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
