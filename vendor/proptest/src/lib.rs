//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the API this workspace's property tests use:
//! the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//! header), [`Strategy`] with `prop_map`, range and tuple strategies,
//! [`Just`], `any::<T>()`, `prop::collection::vec`, [`prop_oneof!`], the
//! `prop_assert*` macros, and [`TestCaseError`].
//!
//! Cases are generated from a deterministic per-test PRNG (seeded from the
//! test's name), so failures are reproducible run-to-run. Failing inputs
//! are reported via `Debug`; there is no shrinking.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// The commonly-imported surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestRunner,
    };
}

/// Namespace mirror of `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::collection_vec as vec;
    }
}

// ------------------------------------------------------------------ rng --

/// Deterministic test-case RNG (xorshift*; quality is ample for tests).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn new(seed: u64) -> Self {
        TestRng { state: seed | 1 }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform integer in `[0, span)`.
    pub fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128) * span) >> 64
    }
}

// ------------------------------------------------------------- strategy --

/// A generator of test-case values.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Box the strategy (used by [`prop_oneof!`] to mix strategy types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn DynStrategy<T>>,
}

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.dyn_generate(rng)
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over every value of `T` (via [`Arbitrary`]).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// `prop::collection::vec(element, size_range)`.
pub fn collection_vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// A length specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

/// Strategy producing vectors of another strategy's values.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.size.lo < self.size.hi_exclusive, "empty size range");
        let span = (self.size.hi_exclusive - self.size.lo) as u128;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

// --------------------------------------------------------------- runner --

/// Why a test case failed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure or explicit rejection.
    Fail(String),
}

impl TestCaseError {
    /// A failed case with the given message.
    pub fn fail(msg: impl std::fmt::Display) -> Self {
        TestCaseError::Fail(msg.to_string())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => f.write_str(m),
        }
    }
}

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the offline suite brisk
        // while still exploring a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

/// Executes a property over many generated cases.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// A runner seeded deterministically from the property's name.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRunner {
            config,
            rng: TestRng::new(seed),
        }
    }

    /// Run `case` for each generated input; panics on the first failure.
    pub fn run<F>(&mut self, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        for i in 0..self.config.cases {
            if let Err(e) = case(&mut self.rng) {
                panic!(
                    "property '{name}' failed at case {i}/{}: {e}",
                    self.config.cases
                );
            }
        }
    }
}

// --------------------------------------------------------------- macros --

/// The `proptest!` block macro: defines `#[test]` functions whose
/// arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal recursion for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr); ) => {};
    (
        ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::TestRunner::new($cfg, stringify!($name));
            runner.run(stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                let __inputs = format!("{:?}", ($(&$arg,)*));
                let mut __case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                __case().map_err(|e| $crate::TestCaseError::fail(format!(
                    "{e}\n  inputs: {__inputs}"
                )))
            });
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Equal-weight union of strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:expr => $strat:expr ),+ $(,)? ) => {
        $crate::__oneof_impl!( $($strat),+ )
    };
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::__oneof_impl!( $($strat),+ )
    };
}

/// Internal helper for [`prop_oneof!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __oneof_impl {
    ( $($strat:expr),+ ) => {{
        let choices = vec![ $( $crate::Strategy::boxed($strat) ),+ ];
        $crate::OneOf { choices }
    }};
}

/// A uniform choice among boxed strategies (see [`prop_oneof!`]).
pub struct OneOf<T> {
    /// The candidate strategies.
    pub choices: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.choices.len() as u128) as usize;
        self.choices[idx].generate(rng)
    }
}

/// `prop_assert!`: fail the current case (without panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!`: equality assertion returning a case failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "{} ({:?} != {:?})",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// `prop_assert_ne!`: inequality assertion returning a case failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in 0u64..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 5);
        }

        #[test]
        fn maps_and_tuples_compose(p in (0u32..4, 1u32..=2).prop_map(|(a, b)| a * 10 + b)) {
            prop_assert!(p % 10 >= 1 && p % 10 <= 2);
            prop_assert!(p / 10 < 4);
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0u8..8, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 8));
        }

        #[test]
        fn oneof_picks_all_branches(x in prop_oneof![Just(1u32), Just(2u32)]) {
            prop_assert!(x == 1 || x == 2);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use super::{ProptestConfig, Strategy, TestRunner};
        let collect = || {
            let mut out = Vec::new();
            let mut runner = TestRunner::new(ProptestConfig::with_cases(10), "det");
            runner.run("det", |rng| {
                out.push((0u32..100).generate(rng));
                Ok(())
            });
            out
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        use super::{ProptestConfig, TestCaseError, TestRunner};
        let mut runner = TestRunner::new(ProptestConfig::with_cases(5), "boom");
        runner.run("boom", |_rng| Err(TestCaseError::fail("boom")));
    }
}
