//! # risa — reproduction of *RISA: Round-Robin Intra-Rack Friendly
//! Scheduling Algorithm for Disaggregated Datacenters* (SC-W 2023)
//!
//! This facade crate re-exports the whole workspace so downstream users can
//! depend on a single crate:
//!
//! * [`topology`] — the disaggregated cluster/rack/box/brick model (Table 1)
//! * [`network`] — the two-tier optical network substrate (Fig. 2/3, Table 2)
//! * [`photonics`] — Beneš/MRR switch and transceiver energy models (§3.2)
//! * [`des`] — the deterministic discrete-event engine
//! * [`workload`] — synthetic and Azure-2017-like workload generators (§5)
//! * [`sched`] — NULB, NALB, RISA and RISA-BF (§4, the paper's contribution)
//! * [`sim`] — the end-to-end simulation driver and per-figure experiments
//! * [`metrics`] — measurement kernels used by the experiments
//!
//! ## Quickstart
//!
//! ```
//! use risa::prelude::*;
//!
//! // The paper's DDC (Table 1) and a small random workload.
//! let mut sim = SimulationBuilder::new()
//!     .algorithm(Algorithm::Risa)
//!     .workload(WorkloadSpec::synthetic(200, 42))
//!     .build();
//! let report = sim.run();
//! assert_eq!(report.dropped, 0);
//! assert!(report.intra_rack_assignments() > 0);
//! ```

pub use risa_des as des;
pub use risa_metrics as metrics;
pub use risa_network as network;
pub use risa_photonics as photonics;
pub use risa_sched as sched;
pub use risa_sim as sim;
pub use risa_topology as topology;
pub use risa_workload as workload;

/// One-stop imports for examples and downstream applications.
pub mod prelude {
    pub use risa_network::{NetworkConfig, NetworkState};
    pub use risa_photonics::{EnergyModel, PhotonicsConfig};
    pub use risa_sched::{Algorithm, ScheduleOutcome, Scheduler};
    pub use risa_sim::{ExperimentReport, RunReport, SimulationBuilder, WorkloadSpec};
    pub use risa_topology::{BoxId, Cluster, RackId, ResourceKind, TopologyConfig, UnitDemand};
    pub use risa_workload::{AzureSubset, SyntheticConfig, VmRequest, Workload};
}
